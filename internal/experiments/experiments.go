// Package experiments implements the reproduction suite: one experiment
// per claim of the paper (see DESIGN.md's per-experiment index). Each
// experiment is a pure function of a Scale (dataset size, trial count,
// seed) returning a printable Table, so the same code backs the
// cmd/aqpbench CLI and the testing.B benchmarks in bench_test.go.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale controls experiment sizing so benchmarks can shrink and the CLI
// can run at full size.
type Scale struct {
	// Rows is the fact-table size.
	Rows int
	// Trials is the Monte-Carlo repetition count.
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Workers is the morsel-parallel worker count every query runs with;
	// 0 defers to runtime.GOMAXPROCS. Results are worker-count-invariant,
	// so tables are byte-identical across Workers settings.
	Workers int
}

// DefaultScale is the CLI default.
var DefaultScale = Scale{Rows: 1_000_000, Trials: 30, Seed: 1}

// SmallScale keeps benchmarks quick.
var SmallScale = Scale{Rows: 100_000, Trials: 10, Seed: 1}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Scale) (*Table, error)

// registry maps experiment IDs to runners, populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

// descriptions maps IDs to one-line summaries.
var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// Run executes one experiment by ID.
func Run(id string, s Scale) (*Table, error) {
	r, ok := registry[strings.ToUpper(id)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(s)
}

// IDs lists registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 numerically.
		ni, nj := 0, 0
		fmt.Sscanf(out[i], "E%d", &ni)
		fmt.Sscanf(out[j], "E%d", &nj)
		return ni < nj
	})
	return out
}

// Describe returns the one-line summary of an experiment.
func Describe(id string) string { return descriptions[strings.ToUpper(id)] }

// helpers shared by experiments

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string  { return fmt.Sprintf("%.4f", x) }
func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
func itoa(x int64) string  { return fmt.Sprintf("%d", x) }

func relErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	if truth < 0 {
		return d / -truth
	}
	return d / truth
}
