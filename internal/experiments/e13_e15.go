package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() {
	register("E13", "outlier index: variance reduction on heavy-tailed sums", runE13)
	register("E14", "budgeted offline sample selection: coverage vs storage", runE14)
	register("E15", "block-sampling design effect: clustered vs shuffled layout", runE15)
}

// E13 — outlier index. Claim (from the lineage the paper surveys,
// Chaudhuri et al. 2001): on heavy-tailed aggregation columns a plain
// uniform sample has huge variance because a few rows carry the sum;
// storing the top-k outliers exactly and sampling only the remainder
// collapses the variance at nearly the same storage.
func runE13(s Scale) (*Table, error) {
	// Pareto(1.5) values: infinite variance — the regime where a plain
	// uniform sample is at the mercy of whether it caught the tail.
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 8, ValueDist: "pareto"})
	if err != nil {
		return nil, err
	}
	truth, err := exactFloat(ev.Catalog, "SELECT SUM(ev_value) FROM events", s.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "E13", Title: "outlier index vs plain uniform sample (heavy-tailed SUM)",
		Header: []string{"method", "storage_rows", "mean_rel_err", "max_rel_err", "mean_ci_rel"}}

	rate := 0.01
	kOutliers := s.Rows / 200 // 0.5% of rows stored exactly

	// Plain uniform sample at a storage-equivalent rate.
	plainRate := rate + float64(kOutliers)/float64(s.Rows)
	var plainErr, plainMax, plainCI float64
	var plainRows int
	for tr := 0; tr < s.Trials; tr++ {
		spec := &sample.Spec{Kind: sample.KindUniformRow, Rate: plainRate, Seed: s.Seed + int64(tr)*7}
		res, err := runSampled(ev.Catalog, "SELECT SUM(ev_value) FROM events", "events", spec, s.Workers)
		if err != nil {
			return nil, err
		}
		est := res.Rows[0][0].AsFloat()
		re := relErr(est, truth)
		plainErr += re
		if re > plainMax {
			plainMax = re
		}
		d := res.Details[0].Aggs[0]
		plainCI += stats.CLTInterval(d.Estimate, d.Variance, d.N, 0.95).RelHalfWidth(est)
		plainRows = int(res.Counters.RowsEmitted)
	}
	n := float64(s.Trials)
	t.AddRow("uniform (storage-matched)", itoa(int64(plainRows)),
		f4(plainErr/n), f4(plainMax), f4(plainCI/n))

	// Outlier index: top-k exact + remainder sampled at rate.
	tbl, err := ev.Catalog.Table("events")
	if err != nil {
		return nil, err
	}
	var oiErr, oiMax, oiCI float64
	var oiRows int
	for tr := 0; tr < s.Trials; tr++ {
		idx, err := sample.BuildOutlierIndex(tbl, "ev_value", kOutliers, rate,
			s.Seed+int64(tr)*13, fmt.Sprintf("oi%d", tr))
		if err != nil {
			return nil, err
		}
		est, variance := idx.EstimateSum()
		re := relErr(est, truth)
		oiErr += re
		if re > oiMax {
			oiMax = re
		}
		oiCI += stats.CLTInterval(est, variance, float64(idx.SampleRows), 0.95).RelHalfWidth(est)
		oiRows = idx.StorageRows()
	}
	t.AddRow("outlier-index (top 0.5% exact)", itoa(int64(oiRows)),
		f4(oiErr/n), f4(oiMax), f4(oiCI/n))
	t.AddNote("same storage, same aggregate: removing the tail from the sampled part shrinks both error and CI")
	return t, nil
}

// E14 — budgeted sample selection. Claim: with a storage budget and a
// predicted workload over several query column sets, greedy
// benefit-per-row selection covers most of the workload weight long
// before the budget could hold every sample.
func runE14(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 64, Skew: 1.0})
	if err != nil {
		return nil, err
	}
	tbl, err := ev.Catalog.Table("events")
	if err != nil {
		return nil, err
	}
	// A workload over four QCS with descending weights. ev_group has 64
	// strata, ev_user many, ev_flag two; the compound set subsumes two
	// others.
	cands := []core.QCSCandidate{
		{QCS: []string{"ev_group"}, Weight: 0.4},
		{QCS: []string{"ev_flag"}, Weight: 0.3},
		{QCS: []string{"ev_group", "ev_flag"}, Weight: 0.2},
		{QCS: []string{"ev_user"}, Weight: 0.1},
	}
	cap := 512
	t := &Table{ID: "E14", Title: "greedy sample selection under a storage budget",
		Header: []string{"budget_rows", "samples_chosen", "covered_weight", "rows_used", "chosen"}}
	for _, budgetFrac := range []float64{0.02, 0.1, 0.5, 1.5} {
		budget := int(budgetFrac * float64(s.Rows))
		plan, err := core.PlanSampleBudget(tbl, cands, cap, budget)
		if err != nil {
			return nil, err
		}
		var covered float64
		var used int
		var names []string
		for _, p := range plan {
			covered += p.Covers
			used += p.Rows
			names = append(names, "("+strings.Join(p.QCS, ",")+")")
		}
		t.AddRow(itoa(int64(budget)), itoa(int64(len(plan))), pct(covered),
			itoa(int64(used)), strings.Join(names, " "))
	}
	t.AddNote("the compound QCS subsumes its parts, so greedy picks it once the budget allows")
	t.AddNote("high-cardinality QCS (ev_user) is the expensive straggler — the last weight bought")
	return t, nil
}

// E15 — block-sampling design effect. Claim: block sampling's statistical
// efficiency depends on the physical layout. When blocks are heterogeneous
// (data shuffled) a block sample behaves almost like a row sample of equal
// size; when the table is clustered (sorted by a correlated key) blocks
// are internally homogeneous and the effective sample size collapses.
func runE15(s Scale) (*Table, error) {
	blockSize := 512
	makeTable := func(clustered bool) (*storage.Catalog, error) {
		rng := rand.New(rand.NewSource(s.Seed))
		// ev_value correlates strongly with a region id; clustering by
		// region makes blocks homogeneous.
		n := s.Rows
		regions := 64
		type row struct {
			region int
			value  float64
		}
		rows := make([]row, n)
		for i := range rows {
			r := rng.Intn(regions)
			rows[i] = row{region: r, value: float64(r)*100 + rng.Float64()*10}
		}
		if clustered {
			// Sorting by region clusters equal-value rows into blocks.
			sort.SliceStable(rows, func(i, j int) bool { return rows[i].region < rows[j].region })
		}
		cat := storage.NewCatalog()
		tbl := storage.NewTableWithBlockSize("t", storage.Schema{
			{Name: "region", Type: storage.TypeInt64},
			{Name: "v", Type: storage.TypeFloat64},
		}, blockSize)
		batch := make([][]storage.Value, 0, 4096)
		for _, r := range rows {
			batch = append(batch, []storage.Value{
				storage.Int64(int64(r.region)), storage.Float64(r.value)})
			if len(batch) == cap(batch) {
				if err := tbl.AppendRows(batch); err != nil {
					return nil, err
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := tbl.AppendRows(batch); err != nil {
				return nil, err
			}
		}
		if err := cat.Add(tbl); err != nil {
			return nil, err
		}
		return cat, nil
	}

	t := &Table{ID: "E15", Title: "block sampling vs physical layout (AVG over correlated column)",
		Header: []string{"layout", "sampler", "rate", "mean_rel_err", "max_rel_err"}}
	sqlQ := "SELECT AVG(v) FROM t"
	for _, layout := range []struct {
		name      string
		clustered bool
	}{{"shuffled", false}, {"clustered", true}} {
		cat, err := makeTable(layout.clustered)
		if err != nil {
			return nil, err
		}
		truth, err := exactFloat(cat, sqlQ, s.Workers)
		if err != nil {
			return nil, err
		}
		// All three schemes at a 2% overall rate: row (scans everything),
		// block (skips 98% of blocks, correlated rows), and bi-level
		// (20% of blocks × 10% of their rows = 2% overall, decorrelated).
		for _, m := range []struct {
			name string
			spec sample.Spec
		}{
			{"row", sample.Spec{Kind: sample.KindUniformRow, Rate: 0.02}},
			{"block", sample.Spec{Kind: sample.KindBlock, Rate: 0.02}},
			{"bilevel", sample.Spec{Kind: sample.KindBiLevel, Rate: 0.2, RowRate: 0.1}},
		} {
			var meanErr, maxErr float64
			for tr := 0; tr < s.Trials; tr++ {
				spec := m.spec
				spec.Seed = s.Seed + int64(tr)*19
				res, err := runSampled(cat, sqlQ, "t", &spec, s.Workers)
				if err != nil {
					return nil, err
				}
				re := 1.0
				if res.NumRows() > 0 {
					re = relErr(res.Rows[0][0].AsFloat(), truth)
				}
				meanErr += re
				if re > maxErr {
					maxErr = re
				}
			}
			t.AddRow(layout.name, m.name, pct(0.02), f4(meanErr/float64(s.Trials)), f4(maxErr))
		}
	}
	t.AddNote("shuffled layout: block ≈ row sampling; clustered layout: block error explodes")
	t.AddNote("bi-level (20%% of blocks × 10%% of rows) recovers most of the accuracy while still skipping 80%% of I/O")
	return t, nil
}
