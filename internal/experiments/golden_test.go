package experiments

import (
	"testing"
)

// goldenIDs are the experiments whose tables contain no wall-clock
// columns, so their rendered output is a pure function of (Rows, Trials,
// Seed) — and, by the morsel executor's deterministic merge, independent
// of the worker count. E2 and E20 report latencies and are excluded.
var goldenIDs = []string{"E1", "E3", "E4"}

func goldenScale(workers int) Scale {
	return Scale{Rows: 4000, Trials: 3, Seed: 42, Workers: workers}
}

// TestGoldenDeterminism runs each timing-free experiment twice at the
// same scale and requires byte-identical tables: same seed, same output,
// down to the formatting.
func TestGoldenDeterminism(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			first, err := Run(id, goldenScale(1))
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(id, goldenScale(1))
			if err != nil {
				t.Fatal(err)
			}
			if first.String() != second.String() {
				t.Errorf("%s is not run-to-run deterministic:\n--- first\n%s\n--- second\n%s",
					id, first, second)
			}
		})
	}
}

// TestGoldenWorkerInvariance runs each timing-free experiment serially
// and with four morsel workers and requires byte-identical tables: the
// parallel executor merges partials in morsel order, so estimates, CIs,
// and every derived statistic must not move when the worker count does.
func TestGoldenWorkerInvariance(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			serial, err := Run(id, goldenScale(1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(id, goldenScale(4))
			if err != nil {
				t.Fatal(err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("%s output depends on worker count:\n--- workers=1\n%s\n--- workers=4\n%s",
					id, serial, parallel)
			}
		})
	}
}
