package experiments

import "testing"

// TestSmokeAll runs every experiment at a tiny scale; shapes are asserted
// in experiments_test.go, this is the does-it-run gate.
func TestSmokeAll(t *testing.T) {
	s := Scale{Rows: 20000, Trials: 3, Seed: 1}
	for _, id := range IDs() {
		tab, err := Run(id, s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		t.Log("\n" + tab.String())
	}
}
