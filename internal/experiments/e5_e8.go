package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() {
	register("E5", "offline vs online sampling as workload predictability degrades", runE5)
	register("E6", "maintenance: stale offline samples drift; rebuild cost", runE6)
	register("E7", "empirical coverage of nominal 95% CIs across scenarios", runE7)
	register("E8", "synopses vs sampling vs exact: speed and generality", runE8)
}

// E5 — offline vs online under workload drift. Claim: precomputed
// stratified samples beat query-time sampling when the query column set
// was predicted, and degrade to exact fallbacks when the workload moves
// out of the predicted set; online sampling is indifferent to prediction.
func runE5(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 32, Skew: 1.1})
	if err != nil {
		return nil, err
	}
	inQCS := "SELECT ev_group, SUM(ev_value) AS s, COUNT(*) AS n FROM events GROUP BY ev_group"
	outQCS := []string{
		"SELECT ev_flag, SUM(ev_value) AS s FROM events GROUP BY ev_flag",
		"SELECT AVG(ev_value) FROM events WHERE ev_user < 1000",
		"SELECT SUM(ev_value) FROM events WHERE ev_ts BETWEEN 100 AND 50000",
	}

	// The sample ladder must scale with the data: the top rung holds a
	// quarter of an average group so the profiled error stays certifiable.
	offCfg := core.DefaultOfflineConfig()
	offCfg.Caps = []int{1024, maxInt(s.Rows/32/4, 2048)}
	offCfg.UniformRates = []float64{0.01}
	offCfg.SafetyFactor = 1.2
	offline := core.NewOfflineEngine(ev.Catalog, offCfg)
	if err := offline.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		return nil, err
	}
	if err := offline.ProfileQuery(inQCS); err != nil {
		return nil, err
	}
	onCfg := core.DefaultOnlineConfig()
	onCfg.MinTableRows = 1000
	onCfg.DefaultRate = 0.01
	online := core.NewOnlineEngine(ev.Catalog, onCfg)
	exact := core.NewExactEngine(ev.Catalog)

	spec := core.ErrorSpec{RelError: 0.15, Confidence: 0.95}
	t := &Table{ID: "E5", Title: "offline vs online as the workload leaves the predicted QCS",
		Header: []string{"qcs_hit_rate", "engine", "apriori_frac", "fallback_frac", "mean_work_frac"}}

	rng := rand.New(rand.NewSource(s.Seed))
	for _, hit := range []float64{1.0, 0.5, 0.0} {
		nq := 12
		queries := make([]string, nq)
		for i := range queries {
			if rng.Float64() < hit {
				queries[i] = inQCS
			} else {
				queries[i] = outQCS[rng.Intn(len(outQCS))]
			}
		}
		for _, eng := range []struct {
			name string
			run  func(*sqlparse.SelectStmt) (*core.Result, error)
		}{
			{"offline", func(st *sqlparse.SelectStmt) (*core.Result, error) { return offline.Execute(st, spec) }},
			{"online", func(st *sqlparse.SelectStmt) (*core.Result, error) { return online.Execute(st, spec) }},
		} {
			var apriori, fellBack int
			var scanFrac float64
			for _, q := range queries {
				st, err := sqlparse.Parse(q)
				if err != nil {
					return nil, err
				}
				exSt, _ := sqlparse.Parse(q)
				exactRes, err := exact.Execute(exSt, spec)
				if err != nil {
					return nil, err
				}
				res, err := eng.run(st)
				if err != nil {
					return nil, err
				}
				if res.Guarantee == core.GuaranteeAPriori {
					apriori++
				}
				if res.Diagnostics.FellBackToExact {
					fellBack++
				}
				exWork := float64(exactRes.Diagnostics.Counters.RowsScanned +
					exactRes.Diagnostics.Counters.RowsEmitted)
				if exWork > 0 {
					work := float64(res.Diagnostics.Counters.RowsScanned +
						res.Diagnostics.Counters.RowsEmitted)
					scanFrac += work / exWork
				}
			}
			t.AddRow(pct(hit), eng.name,
				pct(float64(apriori)/float64(nq)),
				pct(float64(fellBack)/float64(nq)),
				f4(scanFrac/float64(nq)))
		}
	}
	t.AddNote("offline keeps a-priori guarantees only while queries hit the predicted QCS")
	t.AddNote("online never certifies a-priori but is unaffected by workload drift")
	return t, nil
}

// E6 — maintenance. Claim: offline samples silently go stale under
// updates — serving them grows bias without any warning from their CIs —
// and staying fresh costs periodic full rebuild scans; query-time
// sampling has no such liability.
func runE6(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 16})
	if err != nil {
		return nil, err
	}
	sql := "SELECT SUM(ev_value) AS s FROM events"
	offCfg := core.DefaultOfflineConfig()
	offCfg.Caps = nil
	offCfg.UniformRates = []float64{0.02}
	offCfg.StalePolicy = core.StaleServe
	offline := core.NewOfflineEngine(ev.Catalog, offCfg)
	if err := offline.BuildSamples("events", nil); err != nil {
		return nil, err
	}
	if err := offline.ProfileQuery(sql); err != nil {
		return nil, err
	}
	onCfg := core.DefaultOnlineConfig()
	onCfg.MinTableRows = 1000
	onCfg.DefaultRate = 0.02
	online := core.NewOnlineEngine(ev.Catalog, onCfg)
	spec := core.ErrorSpec{RelError: 0.2, Confidence: 0.95}

	t := &Table{ID: "E6", Title: "staleness: error drift of unmaintained offline samples",
		Header: []string{"update_step", "table_rows", "offline_relerr", "offline_guarantee", "online_relerr"}}
	batch := s.Rows / 10
	for step := 0; step <= 4; step++ {
		if step > 0 {
			// Updates with a 5x shifted value distribution.
			if err := ev.AppendShifted(batch, 5, s.Seed+int64(step)); err != nil {
				return nil, err
			}
		}
		truth, err := exactFloat(ev.Catalog, sql, s.Workers)
		if err != nil {
			return nil, err
		}
		st, _ := sqlparse.Parse(sql)
		offRes, err := offline.Execute(st, spec)
		if err != nil {
			return nil, err
		}
		st2, _ := sqlparse.Parse(sql)
		onRes, err := online.Execute(st2, spec)
		if err != nil {
			return nil, err
		}
		tbl, _ := ev.Catalog.Table("events")
		t.AddRow(itoa(int64(step)), itoa(int64(tbl.NumRows())),
			f4(relErr(offRes.Float(0, 0), truth)), offRes.Guarantee.String(),
			f4(relErr(onRes.Float(0, 0), truth)))
	}
	// The cost of becoming fresh again.
	before := offline.Maintenance.RowsScanned
	if err := offline.Rebuild("events"); err != nil {
		return nil, err
	}
	t.AddNote("rebuild scanned %d rows to restore freshness (cumulative maintenance: %d rows)",
		offline.Maintenance.RowsScanned-before, offline.Maintenance.RowsScanned)
	t.AddNote("the stale sample's own CI stays narrow while its bias grows — maintenance is not optional")
	return t, nil
}

// E7 — CI coverage. Claim: nominal confidence intervals are honest in the
// textbook case but quietly undercover for tiny effective samples,
// selective predicates, and joins over correlated samples — the paper's
// warning that error guarantees are the hardest part of AQP.
func runE7(s Scale) (*Table, error) {
	// Two stars: one with uniform join fan-out, one where Zipf-skewed
	// order keys give the join heavy per-key clusters — the correlation
	// that CLT-over-rows quietly ignores.
	star, err := workload.GenerateStar(workload.Config{Seed: s.Seed, LineitemRows: s.Rows})
	if err != nil {
		return nil, err
	}
	skewed, err := workload.GenerateStar(workload.Config{Seed: s.Seed + 1, LineitemRows: s.Rows, Skew: 1.2})
	if err != nil {
		return nil, err
	}
	trials := s.Trials * 4
	conf := 0.95

	const joinSQL = "SELECT SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey"
	uniformBoth := func(p plan.Node, seed int64) {
		plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniformRow, Rate: 0.05, Seed: seed})
		plan.ApplySampler(p, "orders", sample.Spec{Kind: sample.KindUniformRow, Rate: 0.05, Seed: seed + 3})
	}
	universeBoth := func(p plan.Node, seed int64) {
		salt := uint64(seed)*0x9e3779b97f4a7c15 + 17
		plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniverse, Rate: 0.05,
			KeyColumns: []string{"l_orderkey"}, Salt: salt})
		plan.ApplySampler(p, "orders", sample.Spec{Kind: sample.KindUniverse, Rate: 0.05,
			KeyColumns: []string{"o_orderkey"}, Salt: salt, NoWeight: true})
	}

	type scenario struct {
		name  string
		sql   string
		cat   *storage.Catalog
		apply func(p plan.Node, seed int64)
	}
	scenarios := []scenario{
		{
			name: "uniform-sum-1pct",
			sql:  "SELECT SUM(l_extendedprice) FROM lineitem",
			cat:  star.Catalog,
			apply: func(p plan.Node, seed int64) {
				plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniformRow, Rate: 0.01, Seed: seed})
			},
		},
		{
			name: "selective-predicate",
			sql:  "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity = 1 AND l_discount < 0.005",
			cat:  star.Catalog,
			apply: func(p plan.Node, seed int64) {
				plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniformRow, Rate: 0.01, Seed: seed})
			},
		},
		{name: "join-uniform-both/flat", sql: joinSQL, cat: star.Catalog, apply: uniformBoth},
		{name: "join-universe-both/flat", sql: joinSQL, cat: star.Catalog, apply: universeBoth},
		{name: "join-uniform-both/zipf", sql: joinSQL, cat: skewed.Catalog, apply: uniformBoth},
		{name: "join-universe-both/zipf", sql: joinSQL, cat: skewed.Catalog, apply: universeBoth},
	}
	t := &Table{ID: "E7", Title: "empirical coverage of nominal 95% confidence intervals",
		Header: []string{"scenario", "trials", "coverage", "mean_ci_rel", "mean_relerr"}}
	for _, sc := range scenarios {
		truth, err := exactFloat(sc.cat, sc.sql, s.Workers)
		if err != nil {
			return nil, err
		}
		var covered int
		var ciRel, meanErr float64
		var valid int
		for tr := 0; tr < trials; tr++ {
			stmt, _ := sqlparse.Parse(sc.sql)
			p, err := plan.Build(stmt, sc.cat)
			if err != nil {
				return nil, err
			}
			sc.apply(p, s.Seed+int64(tr)*131)
			res, err := exec.RunParallel(p, s.Workers)
			if err != nil {
				return nil, err
			}
			if res.NumRows() == 0 || res.Details == nil || res.Details[0] == nil {
				// Empty sample: the CI does not even exist — count as a miss.
				continue
			}
			d := res.Details[0].Aggs[0]
			iv := stats.CLTInterval(d.Estimate, d.Variance, d.N, conf)
			valid++
			if iv.Contains(truth) {
				covered++
			}
			ciRel += iv.RelHalfWidth(d.Estimate)
			meanErr += relErr(d.Estimate, truth)
		}
		cov := float64(covered) / float64(trials)
		denom := float64(maxInt(valid, 1))
		t.AddRow(sc.name, itoa(int64(trials)), pct(cov), f4(ciRel/denom), f4(meanErr/denom))
	}
	t.AddNote("empty samples count as misses: a CI that never existed cannot cover")
	t.AddNote("undercoverage on selective/join scenarios is the paper's 'no honest guarantee' warning")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E8 — synopses. Claim: a precomputed synopsis answers its narrow query
// class in microseconds and zero scanned rows, but generality collapses
// outside that class — the reason synopses alone cannot carry AQP.
func runE8(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 64, Skew: 1.2})
	if err != nil {
		return nil, err
	}
	syn := core.NewSynopsisEngine(ev.Catalog)
	buildStart := time.Now()
	for _, col := range []string{"ev_value", "ev_user", "ev_group"} {
		if err := syn.BuildColumn("events", col, 128); err != nil {
			return nil, err
		}
	}
	buildTime := time.Since(buildStart)
	exact := core.NewExactEngine(ev.Catalog)

	probes := []struct {
		name string
		sql  string
	}{
		{"range-count", "SELECT COUNT(*) FROM events WHERE ev_value BETWEEN 20 AND 120"},
		{"point-count", "SELECT COUNT(*) FROM events WHERE ev_group = 2"},
		{"distinct-count", "SELECT COUNT(DISTINCT ev_user) FROM events"},
		{"sum (unsupported)", "SELECT SUM(ev_value) FROM events"},
		{"group-by (unsupported)", "SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group"},
	}
	t := &Table{ID: "E8", Title: "synopses vs sampling vs exact",
		Header: []string{"query", "method", "latency", "rows_scanned", "rel_err"}}
	for _, pr := range probes {
		stmt, _ := sqlparse.Parse(pr.sql)
		t0 := time.Now()
		exRes, err := exact.Execute(stmt, core.DefaultErrorSpec)
		if err != nil {
			return nil, err
		}
		exTime := time.Since(t0)
		truth := exRes.Float(0, 0)
		t.AddRow(pr.name, "exact", exTime.Round(time.Microsecond).String(),
			itoa(exRes.Diagnostics.Counters.RowsScanned), "0.0000")

		// Synopsis attempt.
		stmt2, _ := sqlparse.Parse(pr.sql)
		t0 = time.Now()
		synRes, err := syn.Execute(stmt2, core.DefaultErrorSpec)
		if err != nil {
			t.AddRow(pr.name, "synopsis", "-", "-", "unsupported")
		} else {
			t.AddRow(pr.name, "synopsis", time.Since(t0).Round(time.Microsecond).String(),
				"0", f4(relErr(synRes.Float(0, 0), truth)))
		}

		// Uniform 1% sample attempt (only valid for linear aggregates).
		if ok, _ := supportedLinear(pr.sql); ok {
			spec := &sample.Spec{Kind: sample.KindUniformRow, Rate: 0.01, Seed: s.Seed}
			t0 = time.Now()
			res, err := runSampled(ev.Catalog, pr.sql, "events", spec, s.Workers)
			if err == nil && res.NumRows() > 0 {
				t.AddRow(pr.name, "uniform-1%", time.Since(t0).Round(time.Microsecond).String(),
					itoa(res.Counters.RowsScanned), f4(relErr(res.Rows[0][0].AsFloat(), truth)))
			}
		} else {
			t.AddRow(pr.name, "uniform-1%", "-", "-", "unsupported")
		}
	}
	t.AddNote("synopsis build cost: %s over %d rows (amortized across all future queries of its class)",
		buildTime.Round(time.Microsecond), s.Rows)
	t.AddNote("synopses: zero scan, narrow class; sampling: broad class, must touch data; exact: everything, full cost")
	return t, nil
}

func supportedLinear(sql string) (bool, string) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return false, err.Error()
	}
	for _, a := range stmt.Aggregates() {
		if !a.Func.Linear() || a.Distinct {
			return false, fmt.Sprintf("%s not linear", a)
		}
	}
	return true, ""
}
