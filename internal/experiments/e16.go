package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func init() {
	register("E16", "sample reuse (Taster-style cache): amortizing the online scan", runE16)
}

// E16 — sample reuse. Claim (the online/offline hybrid the paper points
// to, à la Taster/Idea): caching the sample a query-time engine draws
// turns repeated analytics on the same table from N scans into one — at
// the price of inheriting the offline freshness liability, which version
// checks must guard.
func runE16(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 16})
	if err != nil {
		return nil, err
	}
	queries := []string{
		"SELECT SUM(ev_value) AS a FROM events",
		"SELECT AVG(ev_value) AS b, COUNT(*) AS n FROM events",
		"SELECT SUM(ev_value) AS c FROM events WHERE ev_ts > 1000",
		"SELECT COUNT(*) AS d FROM events WHERE ev_flag = true",
	}
	runSeq := func(e *core.OnlineEngine) (int64, time.Duration, error) {
		var rows int64
		var total time.Duration
		for rep := 0; rep < 3; rep++ {
			for _, q := range queries {
				stmt, err := sqlparse.Parse(q)
				if err != nil {
					return 0, 0, err
				}
				t0 := time.Now()
				res, err := e.Execute(stmt, core.ErrorSpec{RelError: 0.2, Confidence: 0.95})
				if err != nil {
					return 0, 0, err
				}
				total += time.Since(t0)
				rows += res.Diagnostics.Counters.RowsScanned
			}
		}
		return rows, total, nil
	}

	base := core.DefaultOnlineConfig()
	base.MinTableRows = 1000
	base.DefaultRate = 0.02

	plain := core.NewOnlineEngine(ev.Catalog, base)
	plainRows, plainTime, err := runSeq(plain)
	if err != nil {
		return nil, err
	}

	cachedCfg := base
	cachedCfg.CacheSamples = true
	cached := core.NewOnlineEngine(ev.Catalog, cachedCfg)
	cachedRows, cachedTime, err := runSeq(cached)
	if err != nil {
		return nil, err
	}

	// Updates invalidate: one append, one more query forces a rebuild.
	if err := ev.AppendShifted(s.Rows/20, 1, 77); err != nil {
		return nil, err
	}
	stmt, _ := sqlparse.Parse(queries[0])
	if _, err := cached.Execute(stmt, core.ErrorSpec{RelError: 0.2, Confidence: 0.95}); err != nil {
		return nil, err
	}

	t := &Table{ID: "E16", Title: "sample reuse across a 12-query session (3 reps x 4 queries)",
		Header: []string{"engine", "rows_scanned", "total_latency", "cache_hits", "cache_misses"}}
	t.AddRow("online (no cache)", itoa(plainRows), plainTime.Round(time.Millisecond).String(), "-", "-")
	t.AddRow("online + sample cache", itoa(cachedRows), cachedTime.Round(time.Millisecond).String(),
		itoa(int64(cached.CacheHits)), itoa(int64(cached.CacheMisses)))
	t.AddNote("the cache pays one base scan then rides the materialized sample; updates force a rebuild (second miss)")
	t.AddNote("reuse converts the online engine into the hybrid middle of the design space — with the freshness guard")
	return t, nil
}
