package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Shape assertions: beyond "it runs" (smoke_test.go), the key qualitative
// claims must hold even at test scale. Cells are parsed back out of the
// rendered tables, which also exercises the formatting layer.

var shapeScale = Scale{Rows: 40000, Trials: 4, Seed: 7}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell [%d][%d] = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func findCol(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("%s: no column %q in %v", tab.ID, name, tab.Header)
	return -1
}

func run(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := Run(id, shapeScale)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tab
}

func TestE1ErrorDecreasesWithRate(t *testing.T) {
	tab := run(t, "E1")
	errCol := findCol(t, tab, "mean_rel_err")
	// Compare the first SUM row (lowest rate) with the last SUM row
	// (highest rate): error must drop substantially.
	var first, last float64
	seen := false
	for i, row := range tab.Rows {
		if row[1] == "SUM" {
			if !seen {
				first = cellFloat(t, tab, i, errCol)
				seen = true
			}
			last = cellFloat(t, tab, i, errCol)
		}
	}
	if last >= first {
		t.Errorf("E1: SUM error did not decrease with rate: %v -> %v", first, last)
	}
}

func TestE3DistinctNeverMissesGroups(t *testing.T) {
	tab := run(t, "E3")
	missCol := findCol(t, tab, "missing_groups")
	var uniformMissAtSkew, distinctMissTotal float64
	for i, row := range tab.Rows {
		miss := cellFloat(t, tab, i, missCol)
		if row[2] == "distinct" {
			distinctMissTotal += miss
		}
		if row[2] == "uniform" && row[0] != "0.00" {
			uniformMissAtSkew += miss
		}
	}
	if distinctMissTotal != 0 {
		t.Errorf("E3: distinct sampler missed groups: %v", distinctMissTotal)
	}
	if uniformMissAtSkew == 0 {
		t.Errorf("E3: uniform sampling should miss groups under skew")
	}
}

func TestE4UniformBothStarvesJoin(t *testing.T) {
	tab := run(t, "E4")
	rowsCol := findCol(t, tab, "mean_out_rows")
	// At every rate, uniform-both output rows << universe-both.
	byRate := map[string]map[string]float64{}
	for i, row := range tab.Rows {
		if byRate[row[0]] == nil {
			byRate[row[0]] = map[string]float64{}
		}
		byRate[row[0]][row[1]] = cellFloat(t, tab, i, rowsCol)
	}
	for rate, m := range byRate {
		if m["uniform-both"]*5 > m["universe-both"] {
			t.Errorf("E4 rate %s: uniform-both kept %v rows vs universe %v — expected ~p^2 starvation",
				rate, m["uniform-both"], m["universe-both"])
		}
	}
}

func TestE6StaleErrorGrows(t *testing.T) {
	tab := run(t, "E6")
	offCol := findCol(t, tab, "offline_relerr")
	first := cellFloat(t, tab, 0, offCol)
	last := cellFloat(t, tab, len(tab.Rows)-1, offCol)
	if last < first+0.05 {
		t.Errorf("E6: stale offline error did not grow: %v -> %v", first, last)
	}
	// Guarantee downgraded after updates.
	gCol := findCol(t, tab, "offline_guarantee")
	if tab.Rows[0][gCol] != "a-priori" {
		t.Errorf("E6: fresh sample guarantee = %s", tab.Rows[0][gCol])
	}
	if tab.Rows[len(tab.Rows)-1][gCol] == "a-priori" {
		t.Error("E6: stale sample still claims a-priori")
	}
}

func TestE10LadderMonotone(t *testing.T) {
	tab := run(t, "E10")
	rowsCol := findCol(t, tab, "sample_rows")
	prev := -1.0
	for i, row := range tab.Rows {
		if row[1] != "sample" {
			continue
		}
		cur := cellFloat(t, tab, i, rowsCol)
		if prev > 0 && cur < prev {
			t.Errorf("E10: tighter spec chose a smaller sample: %v after %v", cur, prev)
		}
		prev = cur
	}
	// Achieved error must respect the spec on every served row.
	specCol := findCol(t, tab, "spec_relerr")
	achCol := findCol(t, tab, "achieved_max_relerr")
	for i, row := range tab.Rows {
		if row[1] != "sample" {
			continue
		}
		if cellFloat(t, tab, i, achCol) > cellFloat(t, tab, i, specCol)/100*1.001 &&
			cellFloat(t, tab, i, achCol) > cellFloat(t, tab, i, specCol) {
			// spec column is a percentage; compare in fractions.
			spec := cellFloat(t, tab, i, specCol) / 100
			if got := cellFloat(t, tab, i, achCol); got > spec {
				t.Errorf("E10 row %d: achieved %v > spec %v", i, got, spec)
			}
		}
	}
}

func TestE11CIShrinks(t *testing.T) {
	tab := run(t, "E11")
	ciCol := findCol(t, tab, "ci_rel_halfwidth")
	first := cellFloat(t, tab, 0, ciCol)
	last := cellFloat(t, tab, len(tab.Rows)-1, ciCol)
	if last >= first/2 {
		t.Errorf("E11: CI did not shrink: %v -> %v", first, last)
	}
}

func TestE12EveryTechniqueLosesSomewhere(t *testing.T) {
	tab := run(t, "E12")
	supCol := findCol(t, tab, "supported")
	apCol := findCol(t, tab, "a_priori")
	wsCol := findCol(t, tab, "work_saved")
	preCol := findCol(t, tab, "precompute_rows")
	for i, row := range tab.Rows {
		sup := cellFloat(t, tab, i, supCol)
		ap := cellFloat(t, tab, i, apCol)
		ws := cellFloat(t, tab, i, wsCol)
		pre := cellFloat(t, tab, i, preCol)
		wins := sup >= 99 && ap > 0 && ws > 50 && pre == 0
		if wins {
			t.Errorf("E12: technique %s appears to be a silver bullet: %v", row[0], row)
		}
	}
}

func TestE13OutlierIndexWins(t *testing.T) {
	tab := run(t, "E13")
	errCol := findCol(t, tab, "mean_rel_err")
	uni := cellFloat(t, tab, 0, errCol)
	oi := cellFloat(t, tab, 1, errCol)
	if oi >= uni {
		t.Errorf("E13: outlier index (%v) should beat uniform (%v) on Pareto tails", oi, uni)
	}
}

func TestE14CoverageGrowsWithBudget(t *testing.T) {
	tab := run(t, "E14")
	covCol := findCol(t, tab, "covered_weight")
	prev := -1.0
	for i := range tab.Rows {
		cur := cellFloat(t, tab, i, covCol)
		if cur < prev {
			t.Errorf("E14: coverage decreased with budget: %v after %v", cur, prev)
		}
		prev = cur
	}
	if prev < 80 {
		t.Errorf("E14: the largest budget should cover most weight, got %v%%", prev)
	}
}

func TestE16CacheSavesScans(t *testing.T) {
	tab := run(t, "E16")
	rowsCol := findCol(t, tab, "rows_scanned")
	plain := cellFloat(t, tab, 0, rowsCol)
	cached := cellFloat(t, tab, 1, rowsCol)
	if cached >= plain/2 {
		t.Errorf("E16: cache should at least halve scanned rows: %v vs %v", cached, plain)
	}
	hitCol := findCol(t, tab, "cache_hits")
	if cellFloat(t, tab, 1, hitCol) < 10 {
		t.Errorf("E16: expected >=10 hits, got %v", tab.Rows[1][hitCol])
	}
}

func TestE18NeymanWins(t *testing.T) {
	// Allocation comparisons need more Monte-Carlo power than the other
	// shape tests; sample building is cheap, so crank the trials.
	tab, err := Run("E18", Scale{Rows: 60000, Trials: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	errCol := findCol(t, tab, "mean_rel_err")
	// Rows alternate neyman/equal-cap per budget. Individual budgets are
	// noisy at test scale; the aggregate across budgets must favor Neyman.
	var ney, eq float64
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		ney += cellFloat(t, tab, i, errCol)
		eq += cellFloat(t, tab, i+1, errCol)
	}
	if ney >= eq {
		t.Errorf("E18: neyman total error %v should beat equal-cap %v", ney, eq)
	}
}

func TestE19PercentileCoverage(t *testing.T) {
	tab := run(t, "E19")
	covCol := findCol(t, tab, "dkw_coverage")
	for i := range tab.Rows {
		if cellFloat(t, tab, i, covCol) < 80 {
			t.Errorf("E19 row %d: DKW coverage %v below 80%%", i, cellFloat(t, tab, i, covCol))
		}
	}
}

func TestE15ClusteredBlocksDegrade(t *testing.T) {
	tab := run(t, "E15")
	errCol := findCol(t, tab, "mean_rel_err")
	vals := map[string]float64{}
	for i, row := range tab.Rows {
		vals[row[0]+"/"+row[1]] = cellFloat(t, tab, i, errCol)
	}
	if vals["clustered/block"] < 3*vals["clustered/row"] {
		t.Errorf("E15: clustered block sampling should degrade sharply: block %v vs row %v",
			vals["clustered/block"], vals["clustered/row"])
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 20 {
		t.Fatalf("experiments registered = %d", len(ids))
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E20" {
		t.Errorf("ordering: %v", ids)
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("%s has no description", id)
		}
	}
	if _, err := Run("E99", SmallScale); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	out := tab.String()
	for _, want := range []string{"== X: demo ==", "a  bb", "1  2", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
