package experiments

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func init() {
	register("E20", "morsel-driven parallel speedup vs the serial Volcano executor", runE20)
}

// E20 — intra-query parallelism. The morsel-driven path splits the scan
// into block-aligned morsels, aggregates each on a worker, and merges
// partial states in morsel order, so the answer is bit-identical for any
// worker count. This experiment measures the speedup of that path over
// the legacy serial Volcano executor on an exact aggregate scan, and
// verifies that every mode returns the same answer.
func runE20(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 16, ValueDist: "exp"})
	if err != nil {
		return nil, err
	}
	sql := "SELECT SUM(ev_value), COUNT(*), AVG(ev_value) FROM events WHERE ev_value >= 0"

	reps := s.Trials
	if reps < 3 {
		reps = 3
	}
	build := func() (plan.Node, error) {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		return plan.Build(stmt, ev.Catalog)
	}
	// best-of-reps wall clock for one execution mode.
	timeIt := func(run func(plan.Node) (*exec.Result, error)) (time.Duration, *exec.Result, error) {
		var best time.Duration
		var last *exec.Result
		for r := 0; r < reps; r++ {
			p, err := build()
			if err != nil {
				return 0, nil, err
			}
			t0 := time.Now()
			res, err := run(p)
			if err != nil {
				return 0, nil, err
			}
			el := time.Since(t0)
			if best == 0 || el < best {
				best = el
			}
			last = res
		}
		return best, last, nil
	}

	type mode struct {
		name    string
		workers int
		run     func(plan.Node) (*exec.Result, error)
	}
	modes := []mode{
		{"volcano-serial", 0, func(p plan.Node) (*exec.Result, error) { return exec.Run(p) }},
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		modes = append(modes, mode{fmt.Sprintf("morsel-w%d", w), w,
			func(p plan.Node) (*exec.Result, error) { return exec.RunParallel(p, w) }})
	}

	t := &Table{ID: "E20", Title: "morsel-driven parallel speedup on an exact aggregate scan",
		Header: []string{"mode", "workers", "best_latency", "speedup_vs_serial", "rows_scanned", "sum"}}
	var serial time.Duration
	var volcanoSum, morselSum float64
	var morselSet bool
	for _, m := range modes {
		el, res, err := timeIt(m.run)
		if err != nil {
			return nil, err
		}
		sum := res.Rows[0][0].AsFloat()
		if m.workers == 0 {
			serial = el
			volcanoSum = sum
		} else if !morselSet {
			// The Volcano executor accumulates in a different float order,
			// so it agrees only to rounding; morsel modes must be
			// bit-identical to each other regardless of worker count.
			morselSum, morselSet = sum, true
			if relErr(sum, volcanoSum) > 1e-9 {
				return nil, fmt.Errorf("experiments: morsel answer %v far from serial %v", sum, volcanoSum)
			}
		} else if sum != morselSum {
			return nil, fmt.Errorf("experiments: mode %s answer %v != morsel reference %v", m.name, sum, morselSum)
		}
		workers := "-"
		if m.workers > 0 {
			workers = itoa(int64(m.workers))
		}
		t.AddRow(m.name, workers, el.Round(time.Microsecond).String(),
			f2(float64(serial)/float64(el)), itoa(res.Counters.RowsScanned), f2(sum))
	}
	t.AddNote("morsel workers aggregate block-aligned morsels and merge partials in morsel order")
	t.AddNote("answers are bit-identical across modes and worker counts (checked above)")
	t.AddNote("on a single-core host the speedup comes from the fused morsel pipeline, not concurrency")
	return t, nil
}
