package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func init() {
	register("E9", "one-pass property of query-time sampling; cost of spec-miss fallback", runE9)
	register("E10", "error–latency profile: spec tightness picks the sample size", runE10)
	register("E11", "online aggregation: CI width shrinks ~1/sqrt(rows read)", runE11)
	register("E12", "the no-silver-bullet property matrix, measured", runE12)
}

// E9 — one pass. Claim: query-time sampling must stay a single pass over
// each input to be worth anything; with plan-injected samplers the
// approximate run scans each table once (like exact, but touching less),
// while a spec miss that triggers exact fallback pays the pass twice.
func runE9(s Scale) (*Table, error) {
	star, err := workload.GenerateStar(workload.Config{Seed: s.Seed, LineitemRows: s.Rows})
	if err != nil {
		return nil, err
	}
	sql := `SELECT o_orderpriority, COUNT(*) AS n FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey GROUP BY o_orderpriority`
	exact := core.NewExactEngine(star.Catalog)
	onCfg := core.DefaultOnlineConfig()
	onCfg.MinTableRows = 1000
	onCfg.DefaultRate = 0.02
	online := core.NewOnlineEngine(star.Catalog, onCfg)

	t := &Table{ID: "E9", Title: "passes over data: sampling is one pass; fallback pays twice",
		Header: []string{"run", "passes", "rows_scanned", "latency", "spec_met"}}

	stmt, _ := sqlparse.Parse(sql)
	t0 := time.Now()
	exRes, err := exact.Execute(stmt, core.DefaultErrorSpec)
	if err != nil {
		return nil, err
	}
	t.AddRow("exact", itoa(exRes.Diagnostics.Counters.Passes),
		itoa(exRes.Diagnostics.Counters.RowsScanned),
		time.Since(t0).Round(time.Microsecond).String(), "n/a")

	stmt2, _ := sqlparse.Parse(sql)
	t0 = time.Now()
	onRes, err := online.Execute(stmt2, core.ErrorSpec{RelError: 0.2, Confidence: 0.9})
	if err != nil {
		return nil, err
	}
	t.AddRow("online (loose spec)", itoa(onRes.Diagnostics.Counters.Passes),
		itoa(onRes.Diagnostics.Counters.RowsScanned),
		time.Since(t0).Round(time.Microsecond).String(),
		boolStr(onRes.Diagnostics.SpecSatisfied))

	// An unreachable spec with fallback enabled: the engine samples, sees
	// the miss, and re-runs exactly — two passes.
	fbCfg := onCfg
	fbCfg.FallbackToExact = true
	fallback := core.NewOnlineEngine(star.Catalog, fbCfg)
	stmt3, _ := sqlparse.Parse(sql)
	t0 = time.Now()
	fbRes, err := fallback.Execute(stmt3, core.ErrorSpec{RelError: 0.0005, Confidence: 0.99})
	if err != nil {
		return nil, err
	}
	t.AddRow("online (impossible spec, fallback)", itoa(fbRes.Diagnostics.Counters.Passes),
		itoa(fbRes.Diagnostics.Counters.RowsScanned),
		time.Since(t0).Round(time.Microsecond).String(),
		boolStr(fbRes.Diagnostics.SpecSatisfied))

	t.AddNote("passes counts table scans opened; the join reads two tables, so exact = 2 passes")
	t.AddNote("fallback doubles the passes — why Quickr-style planners reject hopeless sampling upfront")
	return t, nil
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E10 — error–latency profile. Claim: an offline system turns the error
// spec into a sample-size choice: loose specs ride tiny samples, tight
// specs climb the ladder, and specs beyond the profiled ladder fall back
// to exact execution.
func runE10(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 24, Skew: 1.0})
	if err != nil {
		return nil, err
	}
	sql := "SELECT ev_group, SUM(ev_value) AS s FROM events GROUP BY ev_group"
	cfg := core.DefaultOfflineConfig()
	cfg.Caps = []int{32, 128, 512, 2048}
	cfg.UniformRates = nil
	cfg.SafetyFactor = 1.2
	off := core.NewOfflineEngine(ev.Catalog, cfg)
	if err := off.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		return nil, err
	}
	// Profile with several instances for stable estimates.
	for i := 0; i < 3; i++ {
		if err := off.ProfileQuery(sql); err != nil {
			return nil, err
		}
	}
	exactStmt, _ := sqlparse.Parse(sql)
	exactRes, err := core.NewExactEngine(ev.Catalog).Execute(exactStmt, core.DefaultErrorSpec)
	if err != nil {
		return nil, err
	}

	t := &Table{ID: "E10", Title: "error–latency profile: spec -> sample choice",
		Header: []string{"spec_relerr", "answered_from", "sample_rows", "achieved_max_relerr", "guarantee"}}
	for _, eps := range []float64{0.5, 0.2, 0.1, 0.05, 0.005} {
		stmt, _ := sqlparse.Parse(sql)
		res, err := off.Execute(stmt, core.ErrorSpec{RelError: eps, Confidence: 0.95})
		if err != nil {
			return nil, err
		}
		var achieved float64
		if res.NumRows() == exactRes.NumRows() {
			for i := 0; i < res.NumRows(); i++ {
				if re := relErr(res.Float(i, 1), exactRes.Float(i, 1)); re > achieved {
					achieved = re
				}
			}
		} else {
			achieved = 1
		}
		from := "exact (fallback)"
		rows := int64(0)
		if !res.Diagnostics.FellBackToExact {
			from = "sample"
			tbl, _ := ev.Catalog.Table("events")
			rows = int64(res.Diagnostics.SampleFraction * float64(tbl.NumRows()))
		}
		t.AddRow(pct(eps), from, itoa(rows), f4(achieved), res.Guarantee.String())
	}
	t.AddNote("tighter specs select larger rungs of the sample ladder; beyond the ladder -> exact")
	return t, nil
}

// E11 — OLA convergence. Claim: online aggregation's interval width
// shrinks as 1/sqrt(rows read), making early estimates usable; the
// product width·sqrt(k) staying flat is the fingerprint.
func runE11(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 8})
	if err != nil {
		return nil, err
	}
	sql := "SELECT SUM(ev_value) AS s FROM events"
	truth, err := exactFloat(ev.Catalog, sql, s.Workers)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultOLAConfig()
	cfg.ChunkRows = s.Rows / 12
	cfg.StopWhenSpecMet = false
	ola := core.NewOLAEngine(ev.Catalog, cfg)
	stmt, _ := sqlparse.Parse(sql)

	t := &Table{ID: "E11", Title: "online aggregation: interval shrinks ~1/sqrt(rows)",
		Header: []string{"fraction_read", "estimate_relerr", "ci_rel_halfwidth", "ci_rel*sqrt(rows)"}}
	_, err = ola.ExecuteProgressive(stmt, core.DefaultErrorSpec, func(p core.Progress) bool {
		it := p.Result.Items[0][0]
		rel := it.RelHalfWidth
		t.AddRow(f4(p.Fraction), f4(relErr(p.Result.Float(0, 0), truth)),
			f4(rel), f2(rel*sqrtF(float64(p.RowsRead))))
		return true
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("the last column staying ~flat early is the 1/sqrt(k) convergence fingerprint;")
	t.AddNote("its fall toward zero near fraction 1.0 is the finite-population correction kicking in")
	t.AddNote("stopping the moment the CI looks good invalidates its coverage (peeking); see core.OLAEngine docs")
	return t, nil
}

func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations suffice here and avoid importing math twice.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// E12 — the matrix. Claim (the paper's title): measured over one probe
// workload, no technique dominates — each column has a loser.
func runE12(s Scale) (*Table, error) {
	star, err := workload.GenerateStar(workload.Config{Seed: s.Seed, LineitemRows: s.Rows})
	if err != nil {
		return nil, err
	}
	onCfg := core.DefaultOnlineConfig()
	onCfg.MinTableRows = 1000
	onCfg.DefaultRate = 0.02
	online := core.NewOnlineEngine(star.Catalog, onCfg)
	offCfg := core.DefaultOfflineConfig()
	offCfg.Caps = []int{512}
	offCfg.UniformRates = []float64{0.02}
	offline := core.NewOfflineEngine(star.Catalog, offCfg)
	if err := offline.BuildSamples("lineitem", [][]string{{"l_returnflag", "l_linestatus"}}); err != nil {
		return nil, err
	}
	profiled := []string{
		"SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag, l_linestatus",
		"SELECT SUM(l_extendedprice) FROM lineitem",
	}
	for _, q := range profiled {
		if err := offline.ProfileQuery(q); err != nil {
			return nil, err
		}
	}
	syn := core.NewSynopsisEngine(star.Catalog)
	for _, col := range []string{"l_quantity", "l_partkey"} {
		if err := syn.BuildColumn("lineitem", col, 64); err != nil {
			return nil, err
		}
	}
	ola := core.NewOLAEngine(star.Catalog, core.DefaultOLAConfig())
	adv := core.NewAdvisor(core.NewExactEngine(star.Catalog), online, offline, ola, syn)

	probe := []string{
		profiled[0],
		profiled[1],
		"SELECT AVG(l_extendedprice) FROM lineitem WHERE l_shipdate < 1200",
		"SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 10 AND 20",
		"SELECT COUNT(DISTINCT l_partkey) FROM lineitem",
		"SELECT MAX(l_extendedprice) FROM lineitem",
		"SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
	}
	rows, err := adv.Matrix(probe, core.ErrorSpec{RelError: 0.1, Confidence: 0.95})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "E12", Title: "the no-silver-bullet matrix (measured over 8 probe queries)",
		Header: []string{"technique", "supported", "a_priori", "work_saved", "precompute_rows", "maintenance_rows"}}
	for _, r := range rows {
		t.AddRow(string(r.Technique), pct(r.SupportedFraction), pct(r.APrioriFraction),
			pct(r.MeanWorkSaved), itoa(r.PrecomputeRows), itoa(r.MaintenanceRows))
	}
	t.AddNote("exact: full generality, zero work saved; synopses: the reverse")
	t.AddNote("offline buys a-priori guarantees with precompute+maintenance; online trades them away for freshness")
	return t, nil
}
