package server

// End-to-end tests for the observability layer: telemetry endpoints,
// SLO fast-burn auto-dumps driven by chaos, traceparent propagation
// through shard scatter, and the bit-identity invariant with telemetry
// enabled. The fault registry is process-global, so chaos tests never
// run in parallel and always disarm on cleanup.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	aqp "repro"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// telemetryConfig is the base config for a telemetry-enabled test
// server. The store cadence is irrelevant because tests drive Snap()
// explicitly — the ticker is never started.
func telemetryConfig() Config {
	return Config{
		Telemetry:     true,
		DegradeBudget: 2 * time.Second,
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestTelemetryEndpointsGated: without Config.Telemetry the four new
// endpoints 404 so a telemetry-less deployment's surface is unchanged.
func TestTelemetryEndpointsGated(t *testing.T) {
	db := buildDB(t, 1000)
	ts := httptest.NewServer(New(db, Config{}).Handler())
	defer ts.Close()

	for _, path := range []string{"/metrics/history", "/slo", "/debug/flightrecord", "/debug/spans"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("%s without telemetry: status %d, want 404", path, code)
		}
	}
}

// TestTelemetryHistoryAndSLO drives the time-series store through two
// manual snapshots around a query burst and checks the derived history
// (rates, windowed quantiles), the /slo evaluation, and the SLO gauge
// families on both /metrics formats.
func TestTelemetryHistoryAndSLO(t *testing.T) {
	db := buildDB(t, 20000)
	srv := New(db, telemetryConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.TelemetryStore().Snap() // baseline: zero counters
	for i := 0; i < 5; i++ {
		resp, _, bad := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, bad.Error)
		}
	}
	srv.TelemetryStore().Snap() // second edge: 5 queries in the delta

	var hist HistoryResponse
	url := ts.URL + "/metrics/history?window=15m&step=10s&rate=queries_total&quantile=0.99:query_latency_ms"
	if code := getJSON(t, url, &hist); code != http.StatusOK {
		t.Fatalf("/metrics/history: status %d", code)
	}
	if len(hist.Samples) < 2 {
		t.Fatalf("history has %d samples, want >= 2", len(hist.Samples))
	}
	rates := hist.Rates["queries_total"]
	if len(rates) == 0 {
		t.Fatal("no rate points for queries_total")
	}
	if rates[len(rates)-1].V <= 0 {
		t.Fatalf("queries_total rate = %v, want > 0 after a query burst", rates[len(rates)-1].V)
	}
	quants := hist.Quantiles["0.99:query_latency_ms"]
	if len(quants) == 0 {
		t.Fatal("no quantile points for query_latency_ms")
	}
	if v := quants[len(quants)-1].V; !(v >= 0) {
		t.Fatalf("p99 latency = %v, want finite >= 0", v)
	}
	if code := getJSON(t, ts.URL+"/metrics/history?window=banana", nil); code != http.StatusBadRequest {
		t.Errorf("bad window: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/metrics/history?quantile=nope", nil); code != http.StatusBadRequest {
		t.Errorf("bad quantile spec: status %d, want 400", code)
	}

	var slo SLOResponse
	if code := getJSON(t, ts.URL+"/slo", &slo); code != http.StatusOK {
		t.Fatalf("/slo: status %d", code)
	}
	byName := map[string]telemetry.ObjectiveStatus{}
	for _, o := range slo.Objectives {
		byName[o.Objective.Name] = o
	}
	for _, name := range []string{"latency_p99", "audit_coverage", "contract_hold", "degradation_rate"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("default objective %q missing from /slo: %+v", name, slo.Objectives)
		}
	}
	// Five fast, non-degraded queries: latency and degradation hold.
	if st := byName["latency_p99"].State; st != "ok" {
		t.Errorf("latency_p99 state = %q, want ok (%+v)", st, byName["latency_p99"])
	}
	if st := byName["degradation_rate"].State; st != "ok" {
		t.Errorf("degradation_rate state = %q, want ok (%+v)", st, byName["degradation_rate"])
	}
	// No audits ran: the coverage objective must abstain, not page.
	if st := byName["audit_coverage"].State; st != "warming" {
		t.Errorf("audit_coverage state = %q, want warming with no audit events", st)
	}

	// SLO gauge families on both exposition formats.
	snap := getMetrics(t, ts.URL)
	if len(snap.GaugesF) == 0 {
		t.Fatal("JSON /metrics has no gauges_float with telemetry on")
	}
	foundBurn := false
	for k := range snap.GaugesF {
		if strings.HasPrefix(k, "slo_burn_rate{") {
			foundBurn = true
		}
	}
	if !foundBurn {
		t.Fatalf("no slo_burn_rate gauge in %v", snap.GaugesF)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	types, _, series := parseProm(t, string(body))
	if types["slo_burn_rate"] != "gauge" || types["slo_error_budget_remaining"] != "gauge" {
		t.Fatalf("SLO gauge families not declared: %v", types)
	}
	var burnSeries, budgetSeries int
	for _, s := range series {
		switch s.name {
		case "slo_burn_rate":
			burnSeries++
			if s.labels["objective"] == "" || (s.labels["window"] != "fast" && s.labels["window"] != "slow") {
				t.Fatalf("malformed slo_burn_rate labels: %v", s.labels)
			}
		case "slo_error_budget_remaining":
			budgetSeries++
		}
	}
	if burnSeries != 8 || budgetSeries != 4 {
		t.Fatalf("slo series: %d burn, %d budget; want 8 and 4 (4 objectives)", burnSeries, budgetSeries)
	}
}

// TestChaosSLOFastBurnFlightDump is the headline e2e: chaos forces every
// exact query onto the degradation ladder, the degradation-rate
// objective enters fast_burn at the next snapshot, and the SLO engine
// auto-dumps a flight-recorder bundle that holds the offending queries'
// span trees and the fault fires that caused them.
func TestChaosSLOFastBurnFlightDump(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	db := buildDB(t, 20000)
	if err := db.BuildOfflineSamples("t", [][]string{{"g"}}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var dumps []telemetry.Bundle
	cfg := telemetryConfig()
	cfg.FlightSink = func(b telemetry.Bundle) {
		mu.Lock()
		dumps = append(dumps, b)
		mu.Unlock()
	}
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.TelemetryStore().Snap() // baseline edge

	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "core.exact", Kind: fault.KindPanic, P: 1},
	}})
	for i := 0; i < 4; i++ {
		resp, ok, bad := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "exact"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d (%s), want 200 via ladder", i, resp.StatusCode, bad.Error)
		}
		if !ok.Degraded {
			t.Fatalf("query %d not degraded under forced panic", i)
		}
	}
	fault.Uninstall()

	// The snapshot drives SLO evaluation: 4/4 queries degraded in the
	// delta is a 100% bad fraction against a 5% ceiling — burn rate 20 in
	// both windows, over the default fast-burn threshold of 14.
	srv.TelemetryStore().Snap()

	mu.Lock()
	got := append([]telemetry.Bundle(nil), dumps...)
	mu.Unlock()
	if len(got) == 0 {
		t.Fatal("fast burn did not auto-dump a flight bundle")
	}
	b := got[0]
	if b.Reason != "slo_fast_burn:degradation_rate" {
		t.Fatalf("bundle reason = %q, want slo_fast_burn:degradation_rate", b.Reason)
	}
	if len(b.SLO) == 0 {
		t.Fatal("bundle carries no SLO statuses")
	}
	fastBurnSeen := false
	for _, st := range b.SLO {
		if st.Objective.Name == "degradation_rate" && st.State == "fast_burn" {
			fastBurnSeen = true
		}
	}
	if !fastBurnSeen {
		t.Fatalf("bundle SLO block does not show degradation_rate in fast_burn: %+v", b.SLO)
	}
	// The offending queries are pinned with their span trees and the
	// fault fires that felled them.
	degraded := 0
	for _, qr := range b.Queries {
		if !qr.Degraded {
			continue
		}
		degraded++
		if qr.Keep != "degraded" {
			t.Errorf("degraded query seq %d keep = %q, want degraded", qr.Seq, qr.Keep)
		}
		if qr.Spans == nil {
			t.Errorf("degraded query seq %d has no span tree", qr.Seq)
		} else if qr.Spans.Find("engine exact") == nil && qr.Spans.Find("engine offline") == nil &&
			qr.Spans.Find("engine ola") == nil && qr.Spans.Find("engine synopsis") == nil {
			t.Errorf("degraded query seq %d span tree has no engine span:\n%s", qr.Seq, qr.Spans.String())
		}
		fireAttributed := false
		for _, ev := range qr.Events {
			if ev.Kind == "fault_fire" && ev.Name == "core.exact" {
				fireAttributed = true
			}
		}
		if !fireAttributed {
			t.Errorf("degraded query seq %d has no attributed core.exact fault fire: %+v", qr.Seq, qr.Events)
		}
	}
	if degraded != 4 {
		t.Fatalf("bundle holds %d degraded queries, want 4", degraded)
	}
	fires := 0
	for _, ev := range b.Events {
		if ev.Kind == "fault_fire" {
			fires++
		}
	}
	if fires == 0 {
		t.Fatal("bundle event ring holds no fault fires")
	}

	// The page is counted, the engine stays in fast_burn on /slo, and a
	// second snapshot does not re-fire the edge-triggered dump.
	snap := getMetrics(t, ts.URL)
	if snap.Counters[Key("slo_fast_burn_total", "objective", "degradation_rate")] == 0 {
		t.Error("slo_fast_burn_total{objective=degradation_rate} not incremented")
	}
	srv.TelemetryStore().Snap()
	mu.Lock()
	n := len(dumps)
	mu.Unlock()
	if n != len(got) {
		t.Fatalf("fast burn re-fired while still burning: %d dumps, want %d", n, len(got))
	}

	// The on-demand endpoint serves the same shape.
	var http1 telemetry.Bundle
	if code := getJSON(t, ts.URL+"/debug/flightrecord", &http1); code != http.StatusOK {
		t.Fatalf("/debug/flightrecord: status %d", code)
	}
	if http1.Reason != "http" || len(http1.Queries) == 0 {
		t.Fatalf("on-demand bundle reason=%q queries=%d", http1.Reason, len(http1.Queries))
	}
}

// TestTraceparentThroughShardScatter sends an inbound W3C traceparent on
// a query over a sharded table and asserts the caller's trace ID
// reappears on the wire response, in the response header, and on the
// exported spans of every shard scatter leg — each leg additionally
// carrying its own traceparent attribute for remote-shard propagation.
func TestTraceparentThroughShardScatter(t *testing.T) {
	db := buildDB(t, 20000)
	if _, err := db.ShardTable("t", aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: 4}); err != nil {
		t.Fatal(err)
	}
	srv := New(db, telemetryConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	const wantTID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body := strings.NewReader(`{"sql": "SELECT COUNT(*) FROM t", "mode": "exact"}`)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var ok QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	if ok.TraceID != wantTID {
		t.Fatalf("response trace_id = %q, want inbound %q", ok.TraceID, wantTID)
	}
	hdr := resp.Header.Get("traceparent")
	tid, sid, valid := trace.ParseTraceparent(hdr)
	if !valid {
		t.Fatalf("response traceparent %q does not parse", hdr)
	}
	if tid.String() != wantTID {
		t.Fatalf("response traceparent trace ID = %s, want %s", tid, wantTID)
	}
	if sid.IsZero() {
		t.Fatal("response traceparent has a zero span ID")
	}

	var feed telemetry.OTLPFeed
	if code := getJSON(t, ts.URL+"/debug/spans", &feed); code != http.StatusOK {
		t.Fatalf("/debug/spans: status %d", code)
	}
	if len(feed.ResourceSpans) != 1 || len(feed.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("feed envelope shape: %+v", feed)
	}
	service := ""
	for _, a := range feed.ResourceSpans[0].Resource.Attributes {
		if a.Key == "service.name" {
			service = a.Value.StringValue
		}
	}
	if service != "aqpd" {
		t.Fatalf("service.name = %q", service)
	}
	spans := feed.ResourceSpans[0].ScopeSpans[0].Spans
	shardLegs := map[string]bool{} // leg span name -> has traceparent attr
	rootSeen := false
	for _, sp := range spans {
		if sp.TraceID != wantTID {
			t.Fatalf("span %q trace ID %q, want inbound %s", sp.Name, sp.TraceID, wantTID)
		}
		if sp.SpanID == "" || sp.StartTimeUnixNano == "" || sp.EndTimeUnixNano == "" {
			t.Fatalf("span %q missing identity or timestamps: %+v", sp.Name, sp)
		}
		if sp.Name == "query" && sp.Kind == 2 {
			rootSeen = true
			// The server root's parent is the caller's span from the header.
			if sp.ParentSpanID != "00f067aa0ba902b7" {
				t.Fatalf("root parent span = %q, want caller's 00f067aa0ba902b7", sp.ParentSpanID)
			}
		}
		if strings.HasPrefix(sp.Name, "shard ") {
			hasTP := false
			for _, a := range sp.Attributes {
				if a.Key == "traceparent" {
					hasTP = true
					legTID, _, valid := trace.ParseTraceparent(a.Value.StringValue)
					if !valid {
						t.Fatalf("leg %q traceparent attr %q does not parse", sp.Name, a.Value.StringValue)
					}
					if legTID.String() != wantTID {
						t.Fatalf("leg %q traceparent carries trace %s, want %s", sp.Name, legTID, wantTID)
					}
				}
			}
			shardLegs[sp.Name] = hasTP
		}
	}
	if !rootSeen {
		t.Fatal("no SERVER-kind query root span exported")
	}
	if len(shardLegs) != 4 {
		t.Fatalf("exported %d shard scatter legs, want 4: %v", len(shardLegs), shardLegs)
	}
	for name, hasTP := range shardLegs {
		if !hasTP {
			t.Fatalf("scatter leg %q has no traceparent attribute", name)
		}
	}
}

// TestTelemetryBitIdentity asserts telemetry stays observational: the
// same queries return bit-identical rows with telemetry off vs on, with
// 1 vs 4 workers under telemetry, and with trace on vs off.
func TestTelemetryBitIdentity(t *testing.T) {
	queries := []QueryRequest{
		{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "exact"},
		{SQL: "SELECT g, AVG(x), COUNT(*) FROM t GROUP BY g ORDER BY g", Mode: "exact"},
		{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "online", RelError: 0.5, Confidence: 0.95},
		{SQL: "SELECT COUNT(*) FROM t WHERE x >= 0", Mode: "auto", RelError: 0.5, Confidence: 0.95},
	}
	run := func(cfg Config, mutate func(*QueryRequest)) []QueryResponse {
		db := buildDB(t, 20000)
		srv := New(db, cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var out []QueryResponse
		for _, q := range queries {
			if mutate != nil {
				mutate(&q)
			}
			resp, ok, bad := postQuery(t, ts.URL, q)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %q: status %d: %s", q.Mode, q.SQL, resp.StatusCode, bad.Error)
			}
			// Normalize observational fields; everything else must match.
			ok.LatencyMS = 0
			ok.Messages = nil
			ok.TraceID = ""
			ok.Trace = nil
			ok.Workers = 0
			out = append(out, ok)
		}
		return out
	}

	base := run(Config{}, nil)
	for name, got := range map[string][]QueryResponse{
		"telemetry on":         run(telemetryConfig(), nil),
		"telemetry + 1 worker": run(telemetryConfig(), func(q *QueryRequest) { q.Workers = 1 }),
		"telemetry + 4 worker": run(telemetryConfig(), func(q *QueryRequest) { q.Workers = 4 }),
		"trace on":             run(Config{}, func(q *QueryRequest) { q.Trace = true }),
	} {
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s: responses differ from telemetry-off baseline\nbase: %+v\ngot:  %+v", name, base, got)
		}
	}
}

// TestFlightRecorderPanicDump: a contained handler panic auto-dumps a
// bundle through the sink with reason "panic".
func TestFlightRecorderPanicDump(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	db := buildDB(t, 5000)
	var mu sync.Mutex
	var dumps []telemetry.Bundle
	cfg := telemetryConfig()
	cfg.DegradeBudget = -1 // ladder off: the panic must escape to the handler scope
	cfg.FlightSink = func(b telemetry.Bundle) {
		mu.Lock()
		dumps = append(dumps, b)
		mu.Unlock()
	}
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "server.query", Kind: fault.KindPanic, P: 1},
	}})
	resp, _, _ := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked handler status = %d, want 500", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dumps) == 0 {
		t.Fatal("handler panic did not dump a flight bundle")
	}
	if dumps[0].Reason != "panic" {
		t.Fatalf("bundle reason = %q, want panic", dumps[0].Reason)
	}
}
