package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	aqp "repro"
	"repro/internal/insight"
)

// TestWorkloadEndpointMixedWorkload: literal variants collapse onto one
// scorecard and GET /workload ranks the dominant template first.
func TestWorkloadEndpointMixedWorkload(t *testing.T) {
	db := buildDB(t, 20_000)
	srv := New(db, telemetryConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Dominant template: 6 literal variants of the same shape.
	var domFP string
	for _, lit := range []string{"10", "20", "30", "40", "50", "60"} {
		resp, ok, bad := postQuery(t, ts.URL, QueryRequest{
			SQL: "SELECT SUM(x) FROM t WHERE x < " + lit, Mode: "exact"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %d %s", resp.StatusCode, bad.Error)
		}
		if ok.Fingerprint == "" {
			t.Fatal("query response missing fingerprint")
		}
		if domFP == "" {
			domFP = ok.Fingerprint
		} else if ok.Fingerprint != domFP {
			t.Fatalf("literal variant changed fingerprint: %s vs %s", ok.Fingerprint, domFP)
		}
	}
	// Minority shape, twice, via the online engine.
	for i := 0; i < 2; i++ {
		resp, _, bad := postQuery(t, ts.URL, QueryRequest{
			SQL: "SELECT AVG(x) FROM t", Mode: "online", RelError: 0.5, Confidence: 0.95})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("online query: %d %s", resp.StatusCode, bad.Error)
		}
	}

	var wr WorkloadResponse
	if code := getJSON(t, ts.URL+"/workload", &wr); code != http.StatusOK {
		t.Fatalf("GET /workload: %d", code)
	}
	if !wr.Enabled || wr.By != insight.ByTraffic {
		t.Fatalf("workload response header = %+v", wr)
	}
	if wr.Summary.Fingerprints != 2 || wr.Summary.Offered != 8 {
		t.Fatalf("summary = %+v, want 2 fingerprints over 8 offers", wr.Summary)
	}
	if len(wr.Top) != 2 {
		t.Fatalf("top has %d cards", len(wr.Top))
	}
	dom := wr.Top[0]
	if dom.Fingerprint != domFP || dom.Queries != 6 {
		t.Fatalf("dominant card = %+v, want fingerprint %s with 6 queries", dom, domFP)
	}
	if !strings.Contains(dom.Template, "?") || dom.Table != "t" {
		t.Fatalf("dominant card not literal-normalized: %+v", dom)
	}
	if !reflect.DeepEqual(dom.QCS, []string{"x"}) {
		t.Fatalf("dominant card QCS = %v", dom.QCS)
	}
	if len(dom.Techniques) != 1 || dom.Techniques[0].Technique != "exact" || dom.Techniques[0].Queries != 6 {
		t.Fatalf("dominant technique mix = %+v", dom.Techniques)
	}
	if dom.RowsScanned == 0 || dom.LatencyP95MS <= 0 {
		t.Fatalf("dominant card missing cost stats: %+v", dom)
	}

	// The minority card carries its own technique sub-scorecard. (The
	// technique is whatever the engine honestly reported — a loose error
	// spec may complete as exact.)
	min := wr.Top[1]
	if min.Queries != 2 || len(min.Techniques) == 0 || min.Techniques[0].Queries != 2 {
		t.Fatalf("minority card = %+v", min)
	}

	// ?n= truncates, ?by= validates.
	if code := getJSON(t, ts.URL+"/workload?n=1", &wr); code != http.StatusOK || len(wr.Top) != 1 {
		t.Fatalf("?n=1: code %d, %d cards", code, len(wr.Top))
	}
	if code := getJSON(t, ts.URL+"/workload?n=zero", nil); code != http.StatusBadRequest {
		t.Fatalf("bad n: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/workload?by=velocity", nil); code != http.StatusBadRequest {
		t.Fatalf("bad by: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/workload?by=latency", &wr); code != http.StatusOK || wr.By != insight.ByLatency {
		t.Fatalf("?by=latency: code %d, by %q", code, wr.By)
	}

	// The fingerprint gauge reaches /metrics.
	srv.TelemetryStore().Snap()
	snap := getMetrics(t, ts.URL)
	if got := snap.Gauges["workload_fingerprints"]; got != 2 {
		t.Fatalf("workload_fingerprints gauge = %d, want 2", got)
	}
}

// TestWorkloadGating: no telemetry, or a negative cap, disables the
// endpoint.
func TestWorkloadGating(t *testing.T) {
	db := buildDB(t, 1000)
	plain := httptest.NewServer(New(db, Config{}).Handler())
	defer plain.Close()
	if code := getJSON(t, plain.URL+"/workload", nil); code != http.StatusNotFound {
		t.Fatalf("without telemetry: %d, want 404", code)
	}

	cfg := telemetryConfig()
	cfg.WorkloadCap = -1
	optOut := httptest.NewServer(New(db, cfg).Handler())
	defer optOut.Close()
	if code := getJSON(t, optOut.URL+"/workload", nil); code != http.StatusNotFound {
		t.Fatalf("with negative cap: %d, want 404", code)
	}

	srv := New(db, telemetryConfig())
	enabled := httptest.NewServer(srv.Handler())
	defer enabled.Close()
	resp, err := http.Post(enabled.URL+"/workload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /workload: %d, want 405", resp.StatusCode)
	}
}

// TestWorkloadSeededRegression: a seeded latency jump on one fingerprint
// trips its sentinel — the transition reaches the flight recorder, the
// regression counter, and the scorecard's active list; a bystander
// fingerprint stays clean.
func TestWorkloadSeededRegression(t *testing.T) {
	db := buildDB(t, 1000)
	cfg := telemetryConfig()
	cfg.WorkloadWindow = 4
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reg := srv.WorkloadRegistry()
	if reg == nil {
		t.Fatal("insight registry not wired under telemetry")
	}
	victim := "SELECT SUM(x) FROM t WHERE x > 5"
	bystander := "SELECT COUNT(*) FROM t"
	var victimFP string
	for i := 0; i < 8; i++ {
		victimFP = reg.Offer(victim, insight.Observation{Technique: "online", LatencyMS: 10})
		reg.Offer(bystander, insight.Observation{Technique: "exact", LatencyMS: 10})
	}
	for i := 0; i < 4; i++ {
		reg.Offer(victim, insight.Observation{Technique: "online", LatencyMS: 400})
		reg.Offer(bystander, insight.Observation{Technique: "exact", LatencyMS: 10})
	}

	// Counter, labeled by signal.
	snap := getMetrics(t, ts.URL)
	if got := snap.Counters[`workload_regressions_total{signal="latency_p95"}`]; got != 1 {
		t.Fatalf("workload_regressions_total = %d (counters %v)", got, snap.Counters)
	}

	// Flight record carries the transition on the shared timeline.
	b := srv.FlightBundle("test")
	found := false
	for _, ev := range b.Events {
		if ev.Kind == "workload_regression" {
			if ev.Name != victimFP {
				t.Fatalf("regression event names %q, want %q", ev.Name, victimFP)
			}
			if !strings.Contains(ev.Detail, "latency_p95") {
				t.Fatalf("regression event detail %q", ev.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no workload_regression event in flight record (events %+v)", b.Events)
	}

	// The card shows the active regression; the bystander stays clean.
	var wr WorkloadResponse
	if code := getJSON(t, ts.URL+"/workload?by=regressions", &wr); code != http.StatusOK {
		t.Fatalf("GET /workload: %d", code)
	}
	if wr.Top[0].Fingerprint != victimFP || wr.Top[0].Regressions != 1 {
		t.Fatalf("top-by-regressions = %+v", wr.Top[0])
	}
	if !reflect.DeepEqual(wr.Top[0].Active, []string{insight.SignalLatency}) {
		t.Fatalf("active = %v", wr.Top[0].Active)
	}
	if wr.Top[1].Regressions != 0 || len(wr.Top[1].Active) != 0 {
		t.Fatalf("bystander card tripped: %+v", wr.Top[1])
	}
}

// TestWorkloadFingerprintInFlightRecord: served queries land in the
// flight recorder stamped with their fingerprint.
func TestWorkloadFingerprintInFlightRecord(t *testing.T) {
	db := buildDB(t, 5000)
	srv := New(db, telemetryConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ok, bad := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t WHERE x < 7", Mode: "exact"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, bad.Error)
	}
	b := srv.FlightBundle("test")
	if len(b.Queries) == 0 {
		t.Fatal("no query records")
	}
	qr := b.Queries[len(b.Queries)-1]
	if qr.Fingerprint == "" || qr.Fingerprint != ok.Fingerprint {
		t.Fatalf("flight record fingerprint %q, response fingerprint %q", qr.Fingerprint, ok.Fingerprint)
	}
}

// TestWorkloadBitIdentitySharded: enabling insight (riding telemetry)
// changes no result bit-wise on a sharded table, across worker counts.
func TestWorkloadBitIdentitySharded(t *testing.T) {
	queries := []QueryRequest{
		{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "exact"},
		{SQL: "SELECT g, AVG(x), COUNT(*) FROM t GROUP BY g ORDER BY g", Mode: "exact"},
		{SQL: "SELECT COUNT(*) FROM t WHERE x >= 0", Mode: "auto", RelError: 0.5, Confidence: 0.95},
	}
	run := func(cfg Config, workers int) []QueryResponse {
		db := buildDB(t, 20_000)
		if _, err := db.ShardTable("t", aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: 4}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(db, cfg).Handler())
		defer ts.Close()
		var out []QueryResponse
		for _, q := range queries {
			q.Workers = workers
			resp, ok, bad := postQuery(t, ts.URL, q)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%q: status %d: %s", q.SQL, resp.StatusCode, bad.Error)
			}
			ok.LatencyMS = 0
			ok.Messages = nil
			ok.TraceID = ""
			ok.Trace = nil
			ok.Workers = 0
			out = append(out, ok)
		}
		return out
	}

	base := run(Config{}, 0)
	for name, got := range map[string][]QueryResponse{
		"insight on":            run(telemetryConfig(), 0),
		"insight on, 1 worker":  run(telemetryConfig(), 1),
		"insight on, 4 workers": run(telemetryConfig(), 4),
	} {
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s: responses differ from insight-off baseline\nbase: %+v\ngot:  %+v", name, base, got)
		}
	}
}

// TestWorkloadAuditCoverageFeed: auditor verdicts reach the
// (fingerprint, technique) coverage window — the per-shape answer to
// "do this shape's error bars hold up".
func TestWorkloadAuditCoverageFeed(t *testing.T) {
	_, db := auditEvents(t)
	cfg := telemetryConfig()
	cfg.Workers = 4
	cfg.AuditFraction = 1
	cfg.AuditQueueCap = 64
	cfg.AuditWindow = 64
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	const n = 25
	var fp string
	for i := 0; i < n; i++ {
		resp, ok, bad := postQuery(t, ts.URL, QueryRequest{
			SQL: windowSQL(i), Mode: "online", RelError: 0.5, Confidence: 0.95,
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, bad.Error)
		}
		fp = ok.Fingerprint
	}
	drainAuditor(t, srv)

	var wr WorkloadResponse
	if code := getJSON(t, ts.URL+"/workload", &wr); code != http.StatusOK {
		t.Fatalf("GET /workload: %d", code)
	}
	// Every windowSQL differs only in its ev_ts literals: one card.
	if wr.Summary.Fingerprints != 1 || wr.Top[0].Fingerprint != fp {
		t.Fatalf("summary = %+v, top = %+v", wr.Summary, wr.Top)
	}
	card := wr.Top[0]
	if card.Queries != n {
		t.Fatalf("card queries = %d, want %d", card.Queries, n)
	}
	var covN int
	var covHi float64
	for _, tc := range card.Techniques {
		covN += tc.CoverageN
		if tc.CoverageHi > covHi {
			covHi = tc.CoverageHi
		}
	}
	if covN != n {
		t.Fatalf("audited coverage window holds %d outcomes, want %d (techniques %+v)", covN, n, card.Techniques)
	}
	if covHi <= 0 || covHi > 1 {
		t.Fatalf("Wilson upper bound = %v", covHi)
	}
}
