package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	aqp "repro"
	"repro/internal/fault"
)

// buildDB creates a db with one table t(id BIGINT, x DOUBLE, g VARCHAR)
// of n rows. x ~ U(0, 100); g cycles through 8 groups.
func buildDB(t testing.TB, n int, opts ...aqp.Option) *aqp.DB {
	t.Helper()
	db := aqp.New(opts...)
	tbl, err := db.CreateTable("t", aqp.Schema{
		{Name: "id", Type: aqp.TypeInt64},
		{Name: "x", Type: aqp.TypeFloat64},
		{Name: "g", Type: aqp.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const batch = 8192
	rows := make([][]aqp.Value, 0, batch)
	for i := 0; i < n; i++ {
		rows = append(rows, []aqp.Value{
			aqp.Int64(int64(i)),
			aqp.Float64(rng.Float64() * 100),
			aqp.Str(fmt.Sprintf("g%d", i%8)),
		})
		if len(rows) == batch {
			if err := tbl.AppendRows(rows); err != nil {
				t.Fatal(err)
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if err := tbl.AppendRows(rows); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func postQuery(t testing.TB, url string, req QueryRequest) (*http.Response, QueryResponse, ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var ok QueryResponse
	var bad ErrorResponse
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode response: %v: %s", err, buf.String())
		}
	} else {
		_ = json.Unmarshal(buf.Bytes(), &bad)
	}
	return resp, ok, bad
}

func getMetrics(t testing.TB, url string) Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestQueryEndpointExactAndApprox(t *testing.T) {
	db := buildDB(t, 20000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ok, _ := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact status = %d", resp.StatusCode)
	}
	if ok.Technique != "exact" || ok.Guarantee != "exact" {
		t.Fatalf("exact: technique=%s guarantee=%s", ok.Technique, ok.Guarantee)
	}
	if got := ok.Rows[0][0].(float64); got != 20000 {
		t.Fatalf("COUNT(*) = %v, want 20000", got)
	}

	resp, ok, _ = postQuery(t, ts.URL, QueryRequest{
		SQL: "SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx status = %d", resp.StatusCode)
	}
	if ok.Technique == "" || ok.Guarantee == "" {
		t.Fatalf("approx missing annotations: %+v", ok)
	}
	if len(ok.Items) == 0 || !ok.Items[0][0].HasCI {
		t.Fatalf("approx answer has no CI: %+v", ok.Items)
	}
	found := false
	for _, m := range ok.Messages {
		if strings.HasPrefix(m, "advisor: ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no advisor message in %v", ok.Messages)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	db := buildDB(t, 100)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _, bad := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM nosuch", Mode: "exact"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing table: status = %d (%s)", resp.StatusCode, bad.Error)
	}
	resp, _, _ = postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status = %d", resp.StatusCode)
	}
	resp, _, _ = postQuery(t, ts.URL, QueryRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql: status = %d", resp.StatusCode)
	}
}

// TestOLADeadlinePartial is the headline graceful-degradation behavior:
// a deadline far too small to scan 2^20 rows still yields a progressive
// estimate with an a-posteriori interval, not an error.
func TestOLADeadlinePartial(t *testing.T) {
	db := buildDB(t, 1<<20, aqp.WithOLAConfig(aqp.OLAConfig{
		ChunkRows: 2048, MaxFraction: 1, StopWhenSpecMet: false, Seed: 3, MaxBuildRows: 1 << 20,
	}))
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ok, bad := postQuery(t, ts.URL, QueryRequest{
		SQL:       "SELECT AVG(x) FROM t",
		Mode:      "ola",
		RelError:  0.0001,
		TimeoutMS: 15,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ola under deadline: status = %d (%s)", resp.StatusCode, bad.Error)
	}
	if !ok.Partial {
		t.Fatalf("expected a partial (deadline-truncated) answer, got full scan of %d rows", ok.RowsScanned)
	}
	if ok.RowsScanned <= 0 || ok.RowsScanned >= 1<<20 {
		t.Fatalf("partial answer scanned %d rows, want 0 < n < 2^20", ok.RowsScanned)
	}
	if ok.Guarantee != "a-posteriori" {
		t.Fatalf("deadline stop is data-independent, guarantee should stay a-posteriori; got %s", ok.Guarantee)
	}
	if len(ok.Items) == 0 || !ok.Items[0][0].HasCI || ok.Items[0][0].CIHi <= ok.Items[0][0].CILo {
		t.Fatalf("partial answer lacks a usable CI: %+v", ok.Items)
	}
	// True mean is ~50; the estimate should be in the right ballpark.
	got := ok.Rows[0][0].(float64)
	if got < 40 || got > 60 {
		t.Fatalf("partial AVG(x) = %v, want ~50", got)
	}

	// A non-OLA engine under the same impossible deadline is
	// all-or-nothing, but the degradation ladder substitutes a partial
	// OLA estimate rather than failing: 200 with degraded:true.
	resp, ok, bad = postQuery(t, ts.URL, QueryRequest{
		SQL: "SELECT AVG(x) FROM t", Mode: "exact", TimeoutMS: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact under 1ms deadline with ladder: status = %d (%s), want degraded 200", resp.StatusCode, bad.Error)
	}
	if !ok.Degraded || ok.DegradedFrom != "exact" {
		t.Fatalf("ladder answer not flagged: degraded=%v degraded_from=%q", ok.Degraded, ok.DegradedFrom)
	}

	// With the ladder disabled for the request, the old contract holds:
	// past the deadline there is no estimate, so 504.
	resp, _, _ = postQuery(t, ts.URL, QueryRequest{
		SQL: "SELECT AVG(x) FROM t", Mode: "exact", TimeoutMS: 1, NoDegrade: true,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("exact under 1ms deadline, no_degrade: status = %d, want 504", resp.StatusCode)
	}

	snap := getMetrics(t, ts.URL)
	if snap.Counters["queries_partial_total"] == 0 {
		t.Fatalf("queries_partial_total not advanced: %v", snap.Counters)
	}
	if snap.Counters[Key("queries_total", "technique", "online-aggregation")] == 0 {
		t.Fatalf("per-technique counter not advanced: %v", snap.Counters)
	}
	if snap.Counters["queries_deadline_total"] == 0 {
		t.Fatalf("queries_deadline_total not advanced: %v", snap.Counters)
	}
}

func TestTablesAndSamplesEndpoints(t *testing.T) {
	db := buildDB(t, 20000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tables []TableInfo
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tables) != 1 || tables[0].Name != "t" || tables[0].Rows != 20000 {
		t.Fatalf("tables = %+v", tables)
	}
	if len(tables[0].Columns) != 3 || tables[0].Columns[1].Type != "DOUBLE" {
		t.Fatalf("columns = %+v", tables[0].Columns)
	}

	body, _ := json.Marshal(BuildSamplesRequest{
		Table:   "t",
		QCS:     [][]string{{"g"}},
		Profile: []string{"SELECT SUM(x) FROM t GROUP BY g"},
	})
	resp, err = http.Post(ts.URL+"/samples/build", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var built BuildSamplesResponse
	if err := json.NewDecoder(resp.Body).Decode(&built); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samples/build status = %d", resp.StatusCode)
	}
	if len(built.Samples) == 0 {
		t.Fatalf("no samples built: %+v", built)
	}
	for _, s := range built.Samples {
		if !s.Fresh {
			t.Fatalf("freshly built sample reported stale: %+v", s)
		}
	}

	// The samples now show up on /tables too.
	resp, err = http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	tables = nil
	json.NewDecoder(resp.Body).Decode(&tables)
	resp.Body.Close()
	if len(tables[0].Samples) == 0 {
		t.Fatalf("samples missing from /tables: %+v", tables[0])
	}
}

// TestSheddingUnderLoad drives 16 concurrent clients at a 1-worker,
// 1-slot-queue server running slow queries: most must be shed with 429
// and the shed counter must advance; nothing may 500.
func TestSheddingUnderLoad(t *testing.T) {
	db := buildDB(t, 1<<20)
	srv := New(db, Config{Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _, _ := postQuery(t, ts.URL, QueryRequest{
				SQL: "SELECT SUM(x), COUNT(*) FROM t WHERE x > 1", Mode: "exact",
			})
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()

	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no queries succeeded: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no queries shed at workers=1 queue=1 with %d clients: %v", clients, statuses)
	}
	for code := range statuses {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d: %v", code, statuses)
		}
	}
	snap := getMetrics(t, ts.URL)
	if snap.Counters["queries_shed_total"] == 0 {
		t.Fatalf("queries_shed_total not advanced: %v", snap.Counters)
	}
	if int(snap.Counters["queries_shed_total"]) != statuses[http.StatusTooManyRequests] {
		t.Fatalf("shed counter %d != observed 429s %d",
			snap.Counters["queries_shed_total"], statuses[http.StatusTooManyRequests])
	}
}

// TestGracefulShutdownDrains verifies Shutdown lets running queries
// finish while refusing new ones.
func TestGracefulShutdownDrains(t *testing.T) {
	db := buildDB(t, 1<<20)
	srv := New(db, Config{Workers: 4, QueueCap: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pin every query in-flight with injected post-admission latency:
	// on a fast machine the bare scans finish before all four clients'
	// requests overlap, and the drain would have nothing to observe.
	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "server.query", Kind: fault.KindLatency, P: 1, Latency: 300 * time.Millisecond},
	}})
	defer fault.Uninstall()

	const running = 4
	results := make(chan int, running)
	for i := 0; i < running; i++ {
		go func() {
			resp, _, _ := postQuery(t, ts.URL, QueryRequest{
				SQL: "SELECT SUM(x), AVG(x) FROM t WHERE x > 1", Mode: "exact",
			})
			results <- resp.StatusCode
		}()
	}
	// Wait until all queries hold worker slots, then start draining —
	// anything not yet admitted when the drain begins would get 503.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Admission().InFlight() < running && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Admission().InFlight(); got < running {
		t.Fatalf("only %d of %d queries started", got, running)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Shutdown(ctx)
	}()
	// New queries are refused while draining.
	deadline = time.Now().Add(2 * time.Second)
	for !srv.Admission().Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, _, _ := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status = %d, want 503", resp.StatusCode)
	}
	// Healthz flips to draining.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status = %d, want 503", hresp.StatusCode)
	}

	if err := <-drainDone; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	// Every in-flight query finished normally.
	for i := 0; i < running; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("in-flight query finished with %d, want 200", code)
		}
	}
	if n := srv.Admission().InFlight(); n != 0 {
		t.Fatalf("in-flight after drain = %d", n)
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	db := buildDB(t, 5000)
	srv := New(db, Config{Workers: 3, QueueCap: 5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
	}
	snap := getMetrics(t, ts.URL)
	if got := snap.Counters[Key("queries_total", "technique", "exact")]; got != 3 {
		t.Fatalf("exact counter = %d, want 3", got)
	}
	if snap.Counters["rows_scanned_total"] != 3*5000 {
		t.Fatalf("rows_scanned_total = %d, want 15000", snap.Counters["rows_scanned_total"])
	}
	h, okh := snap.Histograms[Key("query_latency_ms", "technique", "exact")]
	if !okh || h.Count != 3 || h.Sum <= 0 {
		t.Fatalf("latency histogram = %+v", h)
	}
	if snap.Gauges["workers"] != 3 || snap.Gauges["queue_capacity"] != 5 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
}

func TestLoadCSVReaderInference(t *testing.T) {
	db := aqp.New()
	csvData := "id,price,name,active\n1,9.5,apple,true\n2,3,banana,false\n3,,cherry,true\n"
	tbl, err := LoadCSVReader(db, "fruit", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	sch := tbl.Schema()
	want := []aqp.Type{aqp.TypeInt64, aqp.TypeFloat64, aqp.TypeString, aqp.TypeBool}
	for i, w := range want {
		if sch[i].Type != w {
			t.Fatalf("column %s type = %v, want %v", sch[i].Name, sch[i].Type, w)
		}
	}
	res, err := db.Query("SELECT SUM(price) FROM fruit")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Float(0, 0); got != 12.5 {
		t.Fatalf("SUM(price) = %v, want 12.5 (NULL skipped)", got)
	}
}

func TestAdmissionUnit(t *testing.T) {
	a := NewAdmission(2, 1)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Third waits in the queue; fourth is shed.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		r3, err := a.Acquire(ctx)
		if err == nil {
			r3()
		}
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", a.QueueDepth())
	}
	if _, err := a.Acquire(context.Background()); err != ErrShed {
		t.Fatalf("4th acquire err = %v, want ErrShed", err)
	}
	// Cancel the queued waiter.
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued waiter err = %v, want context.Canceled", err)
	}
	r1()
	r2()
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); err != ErrDraining {
		t.Fatalf("post-drain acquire err = %v, want ErrDraining", err)
	}
}
