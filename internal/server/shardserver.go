package server

// ShardServer: the serving side of the remote-shard RPC seam. One process
// holds one partition of one table and exposes the three wire endpoints
// (estimate / rebuild / health). It is deliberately dumb — no admission
// control, no engines, no degradation ladder — because the coordinator
// owns query semantics: the shard server's only job is to run an
// aggregate subtree over its rows with the sampler spec it was handed
// (seeds already shard-derived) and ship the partial state back bit-true.
// Malformed or version-skewed requests are refused loudly with 4xx, which
// the client treats as permanent (no retry); execution failures are 5xx,
// which the client's retry envelope may re-attempt.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/shard"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/trace"
)

// injectShardServe fires inside the estimate handler, so chaos schedules
// can fail the server side of the seam as well as the client side.
var injectShardServe = fault.NewPoint("shardserver.estimate",
	"shard server: estimate execution")

// ShardServerConfig configures one shard-server process.
type ShardServerConfig struct {
	// ShardID is this shard's index within its group.
	ShardID int
	// Table is the logical table name served (requests for other tables
	// are refused).
	Table string
	// Workers caps per-estimate parallelism (default GOMAXPROCS).
	Workers int
}

// ShardServer serves one partition of one table over the wire schema.
type ShardServer struct {
	cfg   ShardServerConfig
	table *storage.Table
	start time.Time

	mu  sync.Mutex
	smp *sample.StratifiedResult
}

// NewShardServer wraps a partition table in a shard server.
func NewShardServer(t *storage.Table, cfg ShardServerConfig) *ShardServer {
	if cfg.Table == "" {
		cfg.Table = t.Name()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &ShardServer{cfg: cfg, table: t, start: time.Now()}
}

// Handler returns the shard server's HTTP handler.
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/estimate", s.handleEstimate)
	mux.HandleFunc("/shard/rebuild", s.handleRebuild)
	mux.HandleFunc("/shard/health", s.handleHealth)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *ShardServer) readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *ShardServer) checkTable(w http.ResponseWriter, table string) bool {
	if table != s.cfg.Table {
		writeError(w, http.StatusBadRequest, "this shard serves table %q, not %q", s.cfg.Table, table)
		return false
	}
	return true
}

func (s *ShardServer) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req shard.EstimateRequest
	if !s.readBody(w, r, &req) {
		return
	}
	if req.V != shard.WireVersion {
		writeError(w, http.StatusBadRequest,
			"estimate request wire version %d unsupported (this build speaks v%d)", req.V, shard.WireVersion)
		return
	}
	if !s.checkTable(w, req.Table) {
		return
	}
	stmt, err := sqlparse.Parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	// Adopt the caller's trace context: the echoed trace ID proves the
	// scatter leg's traceparent crossed the process boundary.
	traceID := ""
	if tid, _, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		traceID = tid.String()
	}
	if err := injectShardServe.Inject(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	p, err := shard.BuildShardQueryPlan(shard.Query{Stmt: stmt, Sample: req.Sample}, s.table)
	if err != nil {
		writeError(w, http.StatusBadRequest, "plan: %v", err)
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	part, err := runShardPartial(r.Context(), p, workers)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	blob, err := exec.EncodeAggPartialWire(part)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode partial: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, shard.EstimateResponse{
		V:       shard.WireVersion,
		ShardID: s.cfg.ShardID,
		Rows:    s.table.NumRows(),
		TraceID: traceID,
		Partial: blob,
	})
}

// runShardPartial executes the partial with panic containment: an
// injected (or genuine) panic inside the subtree becomes a typed 5xx
// error, and the process keeps serving.
func runShardPartial(ctx context.Context, p plan.Node, workers int) (part *exec.AggPartial, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			part, err = nil, fault.AsError(rec)
		}
	}()
	return exec.RunAggPartialContext(ctx, p, workers)
}

func (s *ShardServer) handleRebuild(w http.ResponseWriter, r *http.Request) {
	var req shard.RebuildRequest
	if !s.readBody(w, r, &req) {
		return
	}
	if req.V != shard.WireVersion {
		writeError(w, http.StatusBadRequest,
			"rebuild request wire version %d unsupported (this build speaks v%d)", req.V, shard.WireVersion)
		return
	}
	if !s.checkTable(w, req.Table) {
		return
	}
	res, err := sample.BuildUniformTable(s.table, req.Rate, req.Seed,
		fmt.Sprintf("%s__sample", s.table.Name()))
	if err != nil {
		writeError(w, http.StatusBadRequest, "rebuild: %v", err)
		return
	}
	s.mu.Lock()
	s.smp = res
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, shard.RebuildResponse{V: shard.WireVersion, SampleRows: res.SampleRows})
}

func (s *ShardServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	h := shard.HealthWire{
		V:       shard.WireVersion,
		ShardID: s.cfg.ShardID,
		Table:   s.cfg.Table,
		Rows:    s.table.NumRows(),
	}
	s.mu.Lock()
	if s.smp != nil {
		h.SampleRows = s.smp.SampleRows
		h.SampleFresh = s.smp.BuildVersion == s.table.Version()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}
