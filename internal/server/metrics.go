package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Bucket bound presets. Each histogram family picks the preset that
// matches its unit; an implicit +Inf bucket catches the rest.
var (
	// latencyBucketsMS are upper bounds in milliseconds for query
	// latency histograms.
	latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	// errorWidthBuckets are upper bounds for relative CI half-width
	// histograms (dimensionless, 0.001 = 0.1%).
	errorWidthBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
	// rowsScannedBuckets are upper bounds for per-query rows-scanned
	// histograms.
	rowsScannedBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
)

// Metrics is an in-process metrics registry: named counters and fixed-
// bucket histograms, safe for concurrent use, serialized as JSON by the
// /metrics handler (and as Prometheus text by ?format=prom). Keys carry
// their labels inline, Prometheus-style: queries_total{technique="exact"}.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		hists:    make(map[string]*histogram),
	}
}

// Key formats a metric key with one label: name{label="value"}. The
// value is escaped per the Prometheus text exposition format.
func Key(name, label, value string) string {
	return name + "{" + label + `="` + EscapeLabelValue(value) + `"}`
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double quote, and newline get backslash
// escapes; everything else — including non-ASCII — passes through as raw
// UTF-8. (Go's %q, used here previously, additionally hex-escapes
// non-printable and non-ASCII runes, which Prometheus parsers read
// literally.)
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Add increments a counter by delta.
func (m *Metrics) Add(key string, delta int64) {
	m.mu.Lock()
	m.counters[key] += delta
	m.mu.Unlock()
}

// Inc increments a counter by one.
func (m *Metrics) Inc(key string) { m.Add(key, 1) }

// Observe records one sample into a histogram with the default latency
// buckets (created on first use).
func (m *Metrics) Observe(key string, v float64) {
	m.ObserveWith(key, v, latencyBucketsMS)
}

// ObserveWith records one sample into a histogram with the given bucket
// bounds. Bounds are fixed at the histogram's first observation; later
// calls reuse the existing buckets regardless of the bounds argument, so
// every call site for one key should pass the same preset.
func (m *Metrics) ObserveWith(key string, v float64, bounds []float64) {
	m.mu.Lock()
	h := m.hists[key]
	if h == nil {
		h = newHistogram(bounds)
		m.hists[key] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Counter reads a counter's current value (0 if never written).
func (m *Metrics) Counter(key string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[key]
}

// CounterSum sums a labeled counter family: every counter whose key is
// exactly prefix or starts with prefix followed by a label block. The
// label-block requirement keeps families with a shared name prefix apart
// (queries_total must not absorb queries_total_errors).
func (m *Metrics) CounterSum(prefix string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	labeled := prefix + "{"
	for k, v := range m.counters {
		if k == prefix || strings.HasPrefix(k, labeled) {
			sum += v
		}
	}
	return sum
}

// histogram is a fixed-bucket histogram over the bounds it was created
// with.
type histogram struct {
	bounds   []float64
	counts   []int64 // one per bound, plus trailing +Inf
	total    int64
	sum      float64
	min, max float64
}

func newHistogram(bounds []float64) *histogram {
	if len(bounds) == 0 {
		bounds = latencyBucketsMS
	}
	return &histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot copies the registry into a JSON-encodable form.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Gauges     map[string]int64             `json:"gauges"`
	// GaugesF carries float-valued gauges (SLO burn rates and error
	// budgets); absent entirely when telemetry is off, so the JSON of a
	// telemetry-less server is unchanged.
	GaugesF map[string]float64 `json:"gauges_float,omitempty"`
	// Info carries static build identity (go version, module version).
	Info map[string]string `json:"info,omitempty"`
}

// Snapshot captures the current state. Gauges (instantaneous readings
// like queue depth) are supplied by the caller.
func (m *Metrics) Snapshot(gauges map[string]int64) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(m.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(m.hists)),
		Gauges:     gauges,
	}
	for k, v := range m.counters {
		snap.Counters[k] = v
	}
	for k, h := range m.hists {
		hs := HistogramSnapshot{
			Count:   h.total,
			Sum:     h.sum,
			Buckets: make(map[string]int64, len(h.counts)),
		}
		if h.total > 0 {
			hs.Min = h.min
			hs.Max = h.max
			hs.Mean = h.sum / float64(h.total)
		}
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			label := "+Inf"
			if i < len(h.bounds) {
				label = fmt.Sprintf("le=%g", h.bounds[i])
			}
			hs.Buckets[label] = c
		}
		snap.Histograms[k] = hs
	}
	return snap
}

// TelemetrySample converts the registry (plus caller-supplied gauges)
// into one time-series sample for the telemetry store: counters as
// floats, histograms as cumulative bucket counts. One full copy under
// the registry lock, once per snapshot cadence — never on a query path.
func (m *Metrics) TelemetrySample(gauges map[string]float64) telemetry.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	smp := telemetry.Sample{
		T:        time.Now(),
		Counters: make(map[string]float64, len(m.counters)),
		Gauges:   gauges,
		Hists:    make(map[string]telemetry.Hist, len(m.hists)),
	}
	for k, v := range m.counters {
		smp.Counters[k] = float64(v)
	}
	for k, h := range m.hists {
		th := telemetry.Hist{
			Bounds: append([]float64(nil), h.bounds...),
			Cum:    make([]float64, len(h.counts)),
			Sum:    h.sum,
			Count:  float64(h.total),
		}
		var cum int64
		for i, c := range h.counts {
			cum += c
			th.Cum[i] = float64(cum)
		}
		smp.Hists[k] = th
	}
	return smp
}
