package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	aqp "repro"
)

// TestStressMixedWorkload hammers a live handler with 16 concurrent
// clients running mixed exact/approx/OLA/online queries while a writer
// goroutine appends rows to the shared table. Run under -race this is
// the service-level concurrency-safety check: every response must be a
// well-formed 200/429/504, never a 500, and results must stay sane.
func TestStressMixedWorkload(t *testing.T) {
	db := buildDB(t, 100000)
	srv := New(db, Config{Workers: 4, QueueCap: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-build synopses and samples so those registries see concurrent
	// readers too.
	if err := db.BuildSynopsis("t", "x"); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildOfflineSamples("t", [][]string{{"g"}}); err != nil {
		t.Fatal(err)
	}

	queries := []QueryRequest{
		{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"},
		{SQL: "SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%"},
		{SQL: "SELECT AVG(x) FROM t", Mode: "ola", TimeoutMS: 50},
		{SQL: "SELECT SUM(x) FROM t GROUP BY g", Mode: "online", RelError: 0.05, Confidence: 0.95},
		{SQL: "SELECT AVG(x) FROM t", Mode: "offline", RelError: 0.1, Confidence: 0.9},
		{SQL: "SELECT COUNT(*) FROM t WHERE x > 50", Mode: "auto", RelError: 0.05},
	}

	stop := make(chan struct{})
	var writerErr atomic.Value
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tbl, err := db.Table("t")
		if err != nil {
			writerErr.Store(err)
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := tbl.AppendRow(
				aqp.Int64(int64(1_000_000+i)),
				aqp.Float64(float64(i%100)),
				aqp.Str(fmt.Sprintf("g%d", i%8)),
			)
			if err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	const clients = 16
	const perClient = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := queries[(c+i)%len(queries)]
				resp, ok, bad := postQuery(t, ts.URL, req)
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					if len(ok.Rows) == 0 || ok.Technique == "" {
						t.Errorf("malformed 200 for %q: %+v", req.SQL, ok)
					}
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					// Load shedding and deadline misses are legitimate
					// under stress.
				default:
					t.Errorf("unexpected status %d for %q: %s", resp.StatusCode, req.SQL, bad.Error)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	if err := writerErr.Load(); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("nothing succeeded under stress: %v", statuses)
	}

	snap := getMetrics(t, ts.URL)
	var totalCounted int64
	for k, v := range snap.Counters {
		if len(k) > 13 && k[:13] == "queries_total" {
			totalCounted += v
		}
	}
	if int(totalCounted) != statuses[http.StatusOK] {
		t.Fatalf("per-technique counters sum to %d, but %d queries returned 200",
			totalCounted, statuses[http.StatusOK])
	}
}
