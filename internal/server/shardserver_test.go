package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	aqp "repro"
	"repro/internal/fault"
	"repro/internal/shard"
)

// remoteCluster is a full remote-shard topology under test: a coordinator
// serving the query API whose shards live behind real ShardServer
// handlers (httptest stands in for the process boundary — same handlers,
// same bytes).
type remoteCluster struct {
	coord     *httptest.Server
	srv       *Server
	shardSrvs []*httptest.Server
}

// startRemoteCluster builds a coordinator whose table "t" scatters over
// count real shard servers. Partitions come from an identically seeded
// copy of the data, as a real deployment would load aqpgen-emitted
// partition files.
func startRemoteCluster(t *testing.T, rows, count int, opt aqp.RemoteShardOptions, cfg Config, dbOpts ...aqp.Option) *remoteCluster {
	t.Helper()
	key := aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: count}

	dbPart := buildDB(t, rows)
	gp, err := dbPart.ShardTable("t", key)
	if err != nil {
		t.Fatal(err)
	}
	c := &remoteCluster{}
	var addrs []string
	for i := 0; i < count; i++ {
		ss := NewShardServer(gp.ShardTable(i), ShardServerConfig{ShardID: i, Table: "t"})
		srv := httptest.NewServer(ss.Handler())
		c.shardSrvs = append(c.shardSrvs, srv)
		addrs = append(addrs, srv.URL)
	}

	db := buildDB(t, rows, dbOpts...)
	if _, err := db.AttachRemoteShards("t", key, addrs, opt); err != nil {
		t.Fatalf("attach remote shards: %v", err)
	}
	c.srv = New(db, cfg)
	c.coord = httptest.NewServer(c.srv.Handler())
	t.Cleanup(func() {
		c.coord.Close()
		db.Close()
		for _, s := range c.shardSrvs {
			s.Close()
		}
	})
	return c
}

// samplingOnline lowers the online engine's size threshold so the 20k-row
// test table actually gets sampled — the default 50k floor would silently
// run exact and the sampled-path assertions would test nothing.
func samplingOnline() aqp.Option {
	return aqp.WithOnlineConfig(aqp.OnlineConfig{DefaultRate: 0.1, MinTableRows: 1_000, Seed: 1})
}

// normalizeResp zeroes the volatile response fields (latency, messages,
// trace identity) so two runs compare on substance: rows, CI bounds,
// guarantees, coverage.
func normalizeResp(r QueryResponse) QueryResponse {
	r.LatencyMS = 0
	r.Messages = nil
	r.Trace = nil
	r.TraceID = ""
	return r
}

// TestRemoteClusterBitIdenticalToLocal: the full server path over remote
// shards — estimates AND CI bounds — must be bit-identical to the same
// server over in-process shards at the same N and seeds, for exact and
// sampled engines. The process boundary must be invisible in the answer.
func TestRemoteClusterBitIdenticalToLocal(t *testing.T) {
	const rows = 20_000
	for _, count := range []int{2, 4} {
		// Local twin: same data, same key, in-process shards.
		ldb := buildDB(t, rows, samplingOnline())
		if _, err := ldb.ShardTable("t", aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: count}); err != nil {
			t.Fatal(err)
		}
		lsrv := httptest.NewServer(New(ldb, Config{Workers: 2}).Handler())
		rc := startRemoteCluster(t, rows, count, aqp.RemoteShardOptions{ProbeInterval: -1}, Config{Workers: 2}, samplingOnline())

		for _, req := range []QueryRequest{
			{SQL: "SELECT COUNT(*) AS c, SUM(x) AS s FROM t", Mode: "exact"},
			{SQL: "SELECT g, COUNT(*) AS c, AVG(x) AS a FROM t GROUP BY g ORDER BY g", Mode: "exact"},
			{SQL: "SELECT COUNT(*) AS c, SUM(x) AS s FROM t", Mode: "online", RelError: 0.05, Confidence: 0.95},
			{SQL: "SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY g", Mode: "online", RelError: 0.1, Confidence: 0.95},
		} {
			_, lok, lbad := postQuery(t, lsrv.URL, req)
			_, rok, rbad := postQuery(t, rc.coord.URL, req)
			if lbad.Error != "" || rbad.Error != "" {
				t.Fatalf("n=%d %q: local err %q, remote err %q", count, req.SQL, lbad.Error, rbad.Error)
			}
			ln, rn := normalizeResp(lok), normalizeResp(rok)
			if !reflect.DeepEqual(ln, rn) {
				lj, _ := json.Marshal(ln)
				rj, _ := json.Marshal(rn)
				t.Errorf("n=%d %q (mode %s): remote response differs from local:\nlocal:  %s\nremote: %s",
					count, req.SQL, req.Mode, lj, rj)
			}
		}
		lsrv.Close()
	}
}

// TestRemoteClusterKillDegradedHonest: killing one shard server
// mid-cluster yields Degraded-flagged honest answers — exact runs refuse
// to extrapolate and drop to guarantee "none"; sampled runs over hash
// shards extrapolate the survivors and say so — with the failure
// attributed everywhere the operator looks: the response's shards block,
// GET /shards liveness, the remote-event metrics, and the flight
// recorder. Never a silently wrong answer.
func TestRemoteClusterKillDegradedHonest(t *testing.T) {
	rc := startRemoteCluster(t, 20_000, 4,
		aqp.RemoteShardOptions{
			ProbeInterval: 30 * time.Millisecond,
			HedgeDelay:    -1,
			Retry:         fault.RetryConfig{Tries: 2, Base: time.Millisecond},
		},
		Config{Workers: 2, Telemetry: true, FlightQueries: 16}, samplingOnline())

	// Healthy baseline.
	_, ok0, bad0 := postQuery(t, rc.coord.URL, QueryRequest{SQL: "SELECT COUNT(*) AS c FROM t", Mode: "exact"})
	if bad0.Error != "" {
		t.Fatalf("healthy query: %s", bad0.Error)
	}
	if ok0.Shards == nil || len(ok0.Shards.Degraded) != 0 {
		t.Fatalf("healthy cluster reported degraded shards: %+v", ok0.Shards)
	}
	healthy := ok0.Rows[0][0].(float64)
	if healthy != 20_000 {
		t.Fatalf("healthy exact COUNT(*) = %v", healthy)
	}

	// Kill shard 2's server.
	rc.shardSrvs[2].CloseClientConnections()
	rc.shardSrvs[2].Close()

	// Exact mode: the survivors' partial count is served, flagged
	// degraded, guarantee "none" — exact answers are never extrapolated.
	_, ex, exBad := postQuery(t, rc.coord.URL, QueryRequest{SQL: "SELECT COUNT(*) AS c FROM t", Mode: "exact"})
	if exBad.Error != "" {
		t.Fatalf("degraded exact query: %s", exBad.Error)
	}
	if ex.Shards == nil || len(ex.Shards.Degraded) != 1 || ex.Shards.Degraded[0] != 2 {
		t.Fatalf("killed shard not attributed in exact response: %+v", ex.Shards)
	}
	if !ex.Degraded || ex.Guarantee != "none" {
		t.Fatalf("degraded exact run: degraded=%v guarantee=%q, want true/none", ex.Degraded, ex.Guarantee)
	}
	if ex.Shards.Extrapolated {
		t.Fatal("degraded exact run must not extrapolate")
	}
	cov := ex.Shards.Coverage
	if cov <= 0 || cov >= 1 {
		t.Fatalf("degraded coverage = %v, want in (0,1)", cov)
	}
	exCount := ex.Rows[0][0].(float64)
	if exCount >= healthy || exCount != healthy*cov {
		t.Fatalf("degraded exact COUNT(*) = %v, want the covered count %v (coverage %.4f of %v)",
			exCount, healthy*cov, cov, healthy)
	}

	// Sampled mode over hash shards: the survivors are an unbiased window,
	// so the estimate is extrapolated back to the full population and
	// flagged as such.
	_, ol, olBad := postQuery(t, rc.coord.URL, QueryRequest{
		SQL: "SELECT COUNT(*) AS c FROM t", Mode: "online", RelError: 0.05, Confidence: 0.95})
	if olBad.Error != "" {
		t.Fatalf("degraded online query: %s", olBad.Error)
	}
	if ol.Shards == nil || len(ol.Shards.Degraded) != 1 || !ol.Shards.Extrapolated {
		t.Fatalf("degraded online run not extrapolation-flagged: %+v", ol.Shards)
	}
	olCount := ol.Rows[0][0].(float64)
	if olCount < 0.8*healthy || olCount > 1.2*healthy {
		t.Fatalf("extrapolated COUNT(*) = %v, want near %v (coverage %.4f)", olCount, healthy, ol.Shards.Coverage)
	}
	if olCount <= healthy*ol.Shards.Coverage*1.05 {
		t.Fatalf("extrapolated COUNT(*) = %v looks like the unextrapolated surviving count", olCount)
	}

	// GET /shards: the dead shard is marked not alive, with its address.
	deadline := time.Now().Add(2 * time.Second)
	var groups []ShardGroupStatus
	for {
		hr, err := http.Get(rc.coord.URL + "/shards")
		if err != nil {
			t.Fatal(err)
		}
		groups = nil
		if err := json.NewDecoder(hr.Body).Decode(&groups); err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if len(groups) == 1 && !groups[0].Health[2].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/shards never marked shard 2 down: %+v", groups)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, h := range groups[0].Health {
		if h.Kind != "remote" || h.Addr == "" {
			t.Fatalf("health entry missing kind/addr: %+v", h)
		}
	}
	if groups[0].Health[0].ProbeLatencyMS <= 0 {
		t.Fatalf("live shard has no probe latency: %+v", groups[0].Health[0])
	}

	// Metrics: the shard failure and the probe transition are counted.
	// The failed scatter leg reads "fail" (RPC error) or "open" (its
	// breaker already tripped) depending on probe timing — both honest.
	snap := getMetrics(t, rc.coord.URL)
	var sawFail, sawProbeDown bool
	for k, v := range snap.Counters {
		if v <= 0 {
			continue
		}
		if strings.HasPrefix(k, "shard_exec_total{") && strings.Contains(k, `shard="2"`) &&
			(strings.Contains(k, `outcome="fail"`) || strings.Contains(k, `outcome="open"`)) {
			sawFail = true
		}
		if strings.HasPrefix(k, "shard_remote_total{") && strings.Contains(k, `event="probe_down"`) {
			sawProbeDown = true
		}
	}
	if !sawFail || !sawProbeDown {
		t.Fatalf("metrics missing attribution: fail=%v probe_down=%v in %v", sawFail, sawProbeDown, snap.Counters)
	}

	// Flight recorder: the failure is on the record — the shard-outcome
	// event for shard 2 and/or the probe transition.
	b := rc.srv.FlightBundle("test")
	var sawEvent bool
	for _, e := range b.Events {
		if e.Kind == "shard_remote" && e.Detail == "probe_down" {
			sawEvent = true
		}
		if e.Kind == "shard" && e.Shard == 2 && (e.Detail == "fail" || e.Detail == "open") {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatalf("flight recorder holds no shard-failure events (%d events)", len(b.Events))
	}
}

// TestShardServerVersionSkewRejected: the serving side refuses unknown
// wire versions loudly with a 400 naming both versions, and refuses
// requests for a table it does not serve.
func TestShardServerVersionSkewRejected(t *testing.T) {
	db := buildDB(t, 1_000)
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewShardServer(tbl, ShardServerConfig{ShardID: 0})
	ts := httptest.NewServer(ss.Handler())
	defer ts.Close()

	for _, path := range []string{"/shard/estimate", "/shard/rebuild"} {
		body, _ := json.Marshal(map[string]any{"v": 99, "table": "t", "sql": "SELECT COUNT(*) FROM t"})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with v=99: HTTP %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(string(raw), "version 99 unsupported") {
			t.Fatalf("%s version rejection does not name the versions: %s", path, raw)
		}
	}

	body, _ := json.Marshal(map[string]any{"v": 1, "table": "other", "sql": "SELECT COUNT(*) FROM other"})
	resp, err := http.Post(ts.URL+"/shard/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-table estimate: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestShardServerTraceparentEcho: the estimate handler adopts the
// caller's traceparent and echoes the trace ID, proving context
// propagation across the process boundary.
func TestShardServerTraceparentEcho(t *testing.T) {
	db := buildDB(t, 1_000)
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewShardServer(tbl, ShardServerConfig{ShardID: 3})
	ts := httptest.NewServer(ss.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"v": 1, "table": "t", "sql": "SELECT COUNT(*) FROM t"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/shard/estimate", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er shard.EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || er.ShardID != 3 {
		t.Fatalf("estimate: HTTP %d shard %d", resp.StatusCode, er.ShardID)
	}
	if er.TraceID != tid {
		t.Fatalf("trace ID not echoed: got %q want %q", er.TraceID, tid)
	}
}

// TestShardServerRebuildParity: rebuilding via the wire with a derived
// seed produces exactly the sample a local shard would build, reported
// through /shard/health as fresh — the rebuild path's half of the
// local/remote parity guarantee.
func TestShardServerRebuildParity(t *testing.T) {
	db := buildDB(t, 8_000)
	g, err := db.ShardTable("t", aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Local build for the reference sample-row counts.
	if err := g.BuildSamples(0.25, 42); err != nil {
		t.Fatal(err)
	}
	localRows := make([]int, 2)
	for i, s := range g.Shards() {
		localRows[i] = s.Health().SampleRows
	}

	// Serve the same partitions and rebuild over the wire with the same
	// derived seeds.
	db2 := buildDB(t, 8_000)
	g2, err := db2.ShardTable("t", aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ss := NewShardServer(g2.ShardTable(i), ShardServerConfig{ShardID: i, Table: "t"})
		ts := httptest.NewServer(ss.Handler())
		body, _ := json.Marshal(shard.RebuildRequest{V: shard.WireVersion, Table: "t", Rate: 0.25, Seed: shard.DeriveSeed(42, i)})
		resp, err := http.Post(ts.URL+"/shard/rebuild", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rr shard.RebuildResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rr.SampleRows != localRows[i] {
			t.Fatalf("shard %d wire rebuild kept %d rows, local kept %d (same rate+seed must match)",
				i, rr.SampleRows, localRows[i])
		}
		hr, err := http.Get(ts.URL + "/shard/health")
		if err != nil {
			t.Fatal(err)
		}
		var hw shard.HealthWire
		if err := json.NewDecoder(hr.Body).Decode(&hw); err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hw.SampleRows != rr.SampleRows || !hw.SampleFresh {
			t.Fatalf("shard %d health after rebuild: %+v", i, hw)
		}
		ts.Close()
	}
}
