package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// ErrShed is returned when both the worker pool and the wait queue are
// full: the request is load-shed rather than queued unboundedly. It
// wraps core.ErrOverloaded, the taxonomy class the HTTP layer maps to
// 429.
var ErrShed = fmt.Errorf("server: overloaded, request shed: %w", core.ErrOverloaded)

// ErrDraining is returned to new requests once shutdown has begun.
var ErrDraining = errors.New("server: draining, not accepting new queries")

// Admission is a two-stage admission controller: a bounded worker pool
// (at most Workers queries execute concurrently) fronted by a bounded
// wait queue (at most QueueCap more may wait for a slot). Anything
// beyond that is shed immediately — bounded latency is part of the AQP
// contract, so the service fails fast instead of building an invisible
// backlog.
type Admission struct {
	sem   chan struct{} // buffered: one token per running query
	queue chan struct{} // buffered: one token per waiting query

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// NewAdmission creates a controller with the given worker and queue
// capacities (minimums of 1 and 0 are enforced).
func NewAdmission(workers, queueCap int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Admission{
		sem:   make(chan struct{}, workers),
		queue: make(chan struct{}, queueCap),
	}
}

// Acquire admits one query. It returns a release function to call when
// the query finishes, or an error: ErrShed when queue and pool are both
// full, ErrDraining during shutdown, or ctx.Err() if the caller gave up
// while waiting in the queue.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Registration must precede the draining check so Drain's WaitGroup
	// never misses an admitted query.
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	a.inflight.Add(1)
	a.mu.Unlock()

	done := func() {
		<-a.sem
		a.inflight.Done()
	}

	// Fast path: a worker slot is free.
	select {
	case a.sem <- struct{}{}:
		return done, nil
	default:
	}
	// Slow path: wait in the bounded queue; shed if it is full too.
	select {
	case a.queue <- struct{}{}:
	default:
		a.inflight.Done()
		return nil, ErrShed
	}
	defer func() { <-a.queue }()
	select {
	case a.sem <- struct{}{}:
		return done, nil
	case <-ctx.Done():
		a.inflight.Done()
		return nil, ctx.Err()
	}
}

// TryAcquireIdle grants a worker slot only when granting cannot delay
// serving: the wait queue is empty, a slot is free, and the server is not
// draining. It never blocks — background lanes (the accuracy auditor)
// call it in a retry loop, so foreground queries always preempt them
// simply by existing.
func (a *Admission) TryAcquireIdle() (release func(), ok bool) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, false
	}
	a.inflight.Add(1)
	a.mu.Unlock()
	if len(a.queue) > 0 {
		a.inflight.Done()
		return nil, false
	}
	select {
	case a.sem <- struct{}{}:
		return func() {
			<-a.sem
			a.inflight.Done()
		}, true
	default:
		a.inflight.Done()
		return nil, false
	}
}

// QueueDepth reports how many queries are waiting for a worker slot.
func (a *Admission) QueueDepth() int { return len(a.queue) }

// InFlight reports how many queries hold a worker slot.
func (a *Admission) InFlight() int { return len(a.sem) }

// Workers reports the worker-pool capacity.
func (a *Admission) Workers() int { return cap(a.sem) }

// QueueCap reports the wait-queue capacity.
func (a *Admission) QueueCap() int { return cap(a.queue) }

// Draining reports whether shutdown has begun.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// Drain stops admitting new queries and waits until every admitted one
// has released, or ctx expires (returning ctx.Err()).
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
	done := make(chan struct{})
	go func() {
		a.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
