// Package server exposes an aqp.DB as a concurrent HTTP/JSON query
// service: POST /query with an error spec, GET /tables, POST
// /samples/build, GET /metrics, GET /healthz. Concurrency is governed by
// a bounded worker pool with a bounded wait queue (overflow is shed with
// 429), every query runs under a deadline plumbed through the engines
// via context, and online aggregation degrades gracefully — at the
// deadline it returns its best progressive estimate instead of an error.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	aqp "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/insight"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config tunes the service.
type Config struct {
	// Workers is the maximum number of concurrently executing queries
	// (default 4).
	Workers int
	// QueueCap is the maximum number of queries waiting for a worker
	// before new arrivals are shed (default 2*Workers).
	QueueCap int
	// DefaultTimeout bounds queries that specify none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxQueryWorkers caps the per-query morsel-parallel worker count so
	// that Workers concurrent queries cannot oversubscribe the machine:
	// the default is max(1, GOMAXPROCS/Workers). Requests asking for more
	// are clamped, not rejected.
	MaxQueryWorkers int
	// Logger receives the structured query log (nil discards it).
	// Completed queries log at Debug, slow queries and failures at Warn.
	Logger *slog.Logger
	// SlowQuery is the latency at or above which a completed query is
	// logged at Warn instead of Debug (default 1s).
	SlowQuery time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's handler tree. Off by default: profiles expose internals,
	// so production deployments should gate them deliberately.
	EnablePprof bool
	// AuditFraction is the fraction of served approximate queries whose
	// claimed confidence intervals are re-checked against an exact
	// ground-truth execution in an idle-capacity background lane. 0 (the
	// default) disables continuous accuracy auditing.
	AuditFraction float64
	// AuditQueueCap bounds the audit backlog (default 64); overflow sheds
	// the oldest pending audit.
	AuditQueueCap int
	// AuditWindow sizes the rolling coverage/error windows (default 256).
	AuditWindow int
	// AuditSeed drives the deterministic audit-sampling decisions.
	AuditSeed int64
	// DegradeBudget is the per-rung time budget of the graceful-
	// degradation ladder: when the requested engine fails or times out,
	// each fallback technique gets this long to produce a best-effort
	// estimate (default 500ms; negative disables degradation).
	DegradeBudget time.Duration
	// BreakerThreshold is the consecutive engine-fault count that trips
	// an engine's circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// granting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// Telemetry enables the observability layer: the metric time-series
	// store (GET /metrics/history), the SLO engine (GET /slo), the
	// flight recorder (GET /debug/flightrecord), and the OTLP-shaped
	// span export feed (GET /debug/spans). When enabled, every query is
	// traced (observationally — results are bit-identical) so the
	// flight recorder retains span trees.
	Telemetry bool
	// TelemetryStep is the time-series snapshot cadence (default 10s).
	TelemetryStep time.Duration
	// TelemetryWindow is the time-series retention window (default 15m).
	TelemetryWindow time.Duration
	// FlightQueries sizes the flight recorder's query rings (default 64).
	FlightQueries int
	// Objectives overrides the default SLO set (nil = DefaultObjectives).
	Objectives []telemetry.Objective
	// FlightSink, when non-nil, receives automatic flight-recorder
	// dumps (panic containment, SLO fast burn). cmd/aqpd writes them to
	// the -flight-dump path; tests capture them directly.
	FlightSink func(telemetry.Bundle)
	// WorkloadCap bounds the workload-insight fingerprint registry that
	// rides with telemetry: per-shape scorecards and regression
	// sentinels behind GET /workload. 0 takes the registry default
	// (256); negative disables workload insight even with telemetry on.
	WorkloadCap int
	// WorkloadWindow overrides the per-fingerprint sentinel half-window
	// (0 takes the registry default; exposed for tests, which need
	// small windows to trip sentinels deterministically).
	WorkloadWindow int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxQueryWorkers <= 0 {
		c.MaxQueryWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.MaxQueryWorkers < 1 {
			c.MaxQueryWorkers = 1
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SlowQuery <= 0 {
		c.SlowQuery = time.Second
	}
	if c.DegradeBudget == 0 {
		c.DegradeBudget = 500 * time.Millisecond
	}
	return c
}

// Server is the HTTP query service over one shared aqp.DB.
type Server struct {
	db    *aqp.DB
	cfg   Config
	adm   *Admission
	met   *Metrics
	aud   *audit.Auditor
	brk   map[string]*fault.Breaker // per-engine circuit breakers, read-only map
	mux   *http.ServeMux
	start time.Time

	// Observability layer; all nil when Config.Telemetry is off.
	tstore     *telemetry.Store
	slo        *telemetry.SLO
	flight     *telemetry.Recorder
	spans      *telemetry.SpanExporter
	flightSink func(telemetry.Bundle)
	insight    *insight.Registry
}

// New builds a server over db.
func New(db *aqp.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:    db,
		cfg:   cfg,
		adm:   NewAdmission(cfg.Workers, cfg.QueueCap),
		met:   NewMetrics(),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	if cfg.Telemetry {
		s.initTelemetry(cfg)
	}
	s.brk = newBreakers(cfg, s.onBreakerTransition)
	if cfg.AuditFraction > 0 {
		// Ground truth runs through the exact path of the same DB; the
		// admission controller is the idle gate, so audits only borrow
		// worker slots the foreground is not using.
		s.aud = audit.New(db, s.adm, audit.Config{
			Fraction: cfg.AuditFraction,
			QueueCap: cfg.AuditQueueCap,
			Window:   cfg.AuditWindow,
			Seed:     cfg.AuditSeed,
			Logger:   cfg.Logger,
			OnEvent:  s.onAuditEvent,
		})
	}
	// Per-shard outcome telemetry: one counter increment per shard per
	// scatter, labeled by table, shard, and outcome; the flight recorder
	// additionally retains non-ok outcomes as events. Remote envelope
	// events (retries, hedges, probe transitions) get their own counters —
	// they describe the wire, not a scatter outcome — and all but routine
	// hedge fires land in the flight recorder too.
	db.Shards().SetObserver(func(ev shard.Event) {
		switch ev.Type {
		case "retry", "hedge", "hedge_win", "probe_down", "probe_up":
			s.met.Inc(fmt.Sprintf(`shard_remote_total{event="%s",shard="%d",table="%s"}`,
				EscapeLabelValue(ev.Type), ev.Shard, EscapeLabelValue(ev.Table)))
			if s.flight != nil && ev.Type != "hedge" {
				s.flight.AddEvent(telemetry.Event{
					Kind: "shard_remote", Name: ev.Table, Detail: ev.Type, Shard: ev.Shard,
					TraceID: ev.TraceID,
				})
			}
		default:
			s.met.Inc(fmt.Sprintf(`shard_exec_total{outcome="%s",shard="%d",table="%s"}`,
				EscapeLabelValue(ev.Type), ev.Shard, EscapeLabelValue(ev.Table)))
			if s.flight != nil && ev.Type != "ok" {
				s.flight.AddEvent(telemetry.Event{
					Kind: "shard", Name: ev.Table, Detail: ev.Type, Shard: ev.Shard,
					TraceID: ev.TraceID,
				})
			}
		}
	})
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/audit", s.handleAudit)
	s.mux.HandleFunc("/shards", s.handleShards)
	s.mux.HandleFunc("/tables", s.handleTables)
	s.mux.HandleFunc("/samples/build", s.handleBuildSamples)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("/slo", s.handleSLO)
	s.mux.HandleFunc("/workload", s.handleWorkload)
	s.mux.HandleFunc("/debug/flightrecord", s.handleFlightRecord)
	s.mux.HandleFunc("/debug/spans", s.handleSpans)
	s.mux.HandleFunc("/faults", s.handleFaults)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.met }

// Admission returns the admission controller (exposed for tests and for
// gauge reporting).
func (s *Server) Admission() *Admission { return s.adm }

// Auditor returns the accuracy auditor, or nil when auditing is
// disabled (exposed for tests and CLI drains).
func (s *Server) Auditor() *audit.Auditor { return s.aud }

// Shutdown stops admitting queries and waits for in-flight ones to
// drain, or until ctx expires. Pending audits are abandoned — they are
// best-effort telemetry, not client work.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.adm.Drain(ctx)
	if s.aud != nil {
		s.aud.Close()
	}
	if s.tstore != nil {
		s.tstore.Close()
		fault.SetOnFire(nil)
	}
	return err
}

// onAuditEvent folds audit-lane outcomes into the metrics registry.
func (s *Server) onAuditEvent(ev audit.Event) {
	switch ev.Kind {
	case audit.EventAudited:
		s.met.Inc(Key("audits_total", "technique", ev.Technique))
		s.met.Observe(Key("audit_lag_ms", "technique", ev.Technique), ev.LagMS)
	case audit.EventCovered:
		s.met.Inc(Key("audit_covered_total", "technique", ev.Technique))
		s.met.ObserveWith(Key("audit_rel_error", "technique", ev.Technique),
			ev.RelError, errorWidthBuckets)
		if s.insight != nil {
			s.insight.ReportAudit(ev.Fingerprint, ev.Technique, true)
		}
	case audit.EventMissed:
		s.met.Inc(Key("audit_missed_total", "technique", ev.Technique))
		s.met.ObserveWith(Key("audit_rel_error", "technique", ev.Technique),
			ev.RelError, errorWidthBuckets)
		if s.insight != nil {
			s.insight.ReportAudit(ev.Fingerprint, ev.Technique, false)
		}
	case audit.EventViolation:
		s.met.Inc(Key("coverage_violation_total", "technique", ev.Technique))
	case audit.EventContractHeld:
		s.met.Inc(Key("audit_contract_held_total", "technique", ev.Technique))
	case audit.EventContractBroken:
		s.met.Inc(Key("audit_contract_broken_total", "technique", ev.Technique))
	case audit.EventContractViolation:
		s.met.Inc(Key("contract_violation_total", "technique", ev.Technique))
	case audit.EventDropped:
		s.met.Inc("audit_dropped_total")
	case audit.EventDeduped:
		s.met.Inc("audit_deduped_total")
	case audit.EventError:
		s.met.Inc("audit_errors_total")
	case audit.EventUnmatched:
		s.met.Inc(Key("audit_unmatched_total", "technique", ev.Technique))
	case audit.EventStale:
		s.met.Inc(Key("sample_stale_detected_total", "table", ev.Table))
	case audit.EventPanic:
		s.met.Inc("audit_panics_total")
	}
}

// handleAudit serves the rolling accuracy-audit report.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.aud == nil {
		writeJSON(w, http.StatusOK, audit.Report{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, s.aud.Report())
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// panicWriter tracks whether a response has started, so the handler's
// containment layer knows if a typed 500 can still be written.
type panicWriter struct {
	http.ResponseWriter
	wrote bool
}

func (p *panicWriter) WriteHeader(status int) {
	p.wrote = true
	p.ResponseWriter.WriteHeader(status)
}

func (p *panicWriter) Write(b []byte) (int, error) {
	p.wrote = true
	return p.ResponseWriter.Write(b)
}

// handleQuery admits, bounds, routes, and executes one query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Last-resort containment: engines recover their own panics, but a
	// bug in the handler itself (or an injected server.query panic) must
	// poison only this request, never the process.
	pw := &panicWriter{ResponseWriter: w}
	w = pw
	defer func() {
		if rec := recover(); rec != nil {
			err := fault.AsError(rec)
			s.met.Inc(Key("query_panics_total", "engine", "server"))
			s.met.Inc("queries_errors_total")
			s.cfg.Logger.Error("query handler panic contained", "err", err)
			if !pw.wrote {
				writeError(w, http.StatusInternalServerError, "%v", core.Classify(err))
			}
			// A contained handler panic is exactly what the flight
			// recorder exists for: dump automatically.
			if s.flight != nil && s.flightSink != nil {
				s.flightSink(s.FlightBundle("panic"))
			}
		}
	}()
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "missing sql")
		return
	}
	if err := validMode(req.Mode); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, err := s.adm.Acquire(r.Context())
	switch {
	case errors.Is(err, ErrShed):
		s.met.Inc("queries_shed_total")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded: %d running, %d queued", s.adm.InFlight(), s.adm.QueueDepth())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		// The client went away while queued.
		s.met.Inc("queries_abandoned_total")
		writeError(w, http.StatusRequestTimeout, "canceled while queued: %v", err)
		return
	}
	defer release()

	// Chaos seam: an injected panic here exercises the handler
	// containment above; an injected error takes the typed 503 path.
	if err := injectServerQuery.Inject(); err != nil {
		s.met.Inc("queries_errors_total")
		writeError(w, http.StatusServiceUnavailable, "%v", core.Classify(err))
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Per-query parallelism: the admission slot is held for the whole
	// execution, so pool×workers is bounded by Workers*MaxQueryWorkers.
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.MaxQueryWorkers {
		workers = s.cfg.MaxQueryWorkers
	}
	ctx = exec.ContextWithWorkers(ctx, workers)

	// Per-request tracing: install a tracer so engine/operator spans are
	// recorded, and embed the profile tree in the response. Tracing only
	// observes; traced results are bit-identical to untraced ones. With
	// telemetry on, every query is traced so the flight recorder retains
	// span trees; an inbound W3C traceparent header joins its trace, so
	// the query's spans carry the caller's trace ID.
	var tr *trace.Tracer
	if req.Trace || s.flight != nil {
		tid, parentSpan, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
		tr = trace.NewWithParent("query", tid, parentSpan)
		ctx = trace.WithTracer(ctx, tr)
	}

	start := time.Now()
	res, degradedFrom, err := s.executeResilient(ctx, r.Context(), req, workers)
	elapsed := time.Since(start)
	var prof *trace.Profile
	if tr != nil {
		prof = tr.Profile()
		w.Header().Set("traceparent", tr.Root().Traceparent())
	}
	if err != nil {
		err = core.Classify(err)
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, core.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
			// Non-OLA engines are all-or-nothing: past the deadline (and
			// past the degradation ladder) there is no estimate to return.
			status = http.StatusGatewayTimeout
			s.met.Inc("queries_deadline_total")
		case errors.Is(err, core.ErrOverloaded):
			status = http.StatusTooManyRequests
		case errors.Is(err, core.ErrEngineUnavailable):
			status = http.StatusServiceUnavailable
		case errors.Is(err, core.ErrQueryPanic):
			status = http.StatusInternalServerError
		case errors.Is(err, context.Canceled):
			status = http.StatusRequestTimeout
		}
		s.met.Inc("queries_errors_total")
		// Failures count against the shape too: a fingerprint whose
		// queries started erroring is exactly what /workload should show.
		var failFP string
		if s.insight != nil {
			failFP = s.insight.Offer(req.SQL, insight.Observation{
				LatencyMS: float64(elapsed.Microseconds()) / 1e3,
				Err:       true,
			})
		}
		s.cfg.Logger.Warn("query failed",
			"sql", req.SQL, "mode", req.Mode, "fingerprint", failFP,
			"latency_ms", float64(elapsed.Microseconds())/1e3,
			"status", status, "err", err.Error())
		s.recordQuery(telemetry.QueryRecord{
			Start: start, SQL: req.SQL, Mode: req.Mode,
			Fingerprint: failFP,
			Status:      status, Err: err.Error(),
			LatencyMS: float64(elapsed.Microseconds()) / 1e3,
		}, prof)
		writeError(w, status, "%v", err)
		return
	}

	latencyMS := float64(elapsed.Microseconds()) / 1e3
	tech := string(res.Technique)
	s.met.Inc(Key("queries_total", "technique", tech))
	s.met.Inc(Key("queries_by_guarantee", "guarantee", res.Guarantee.String()))
	s.met.Add("rows_scanned_total", res.Diagnostics.Counters.RowsScanned)
	s.met.Observe(Key("query_latency_ms", "technique", tech), latencyMS)
	s.met.ObserveWith(Key("query_rows_scanned", "technique", tech),
		float64(res.Diagnostics.Counters.RowsScanned), rowsScannedBuckets)
	if res.Diagnostics.Partial {
		s.met.Inc("queries_partial_total")
	}
	if c := res.Diagnostics.Contract; c != nil {
		s.met.Inc(Key("queries_contract_total", "outcome", string(c.Verdict)))
	}
	// Accuracy telemetry for approximate answers: the realized relative
	// CI half-width vs the promised one, and whether the spec was met —
	// the production signal that a sample ladder or synopsis has gone
	// stale relative to the workload.
	if res.Guarantee != core.GuaranteeExact {
		s.met.ObserveWith(Key("query_ci_rel_width", "technique", tech),
			res.MaxRelHalfWidth(), errorWidthBuckets)
		if res.Spec.RelError > 0 {
			s.met.ObserveWith(Key("query_ci_target_width", "technique", tech),
				res.Spec.RelError, errorWidthBuckets)
		}
		if res.Diagnostics.SpecSatisfied {
			s.met.Inc(Key("queries_spec_met_total", "technique", tech))
		} else {
			s.met.Inc(Key("queries_spec_missed_total", "technique", tech))
		}
	}

	logAttrs := []any{
		"sql", req.SQL, "mode", req.Mode, "technique", tech,
		"fingerprint", res.Diagnostics.Fingerprint,
		"guarantee", res.Guarantee.String(), "latency_ms", latencyMS,
		"rows_scanned", res.Diagnostics.Counters.RowsScanned,
		"sample_fraction", res.Diagnostics.SampleFraction,
		"workers", res.Diagnostics.Workers,
		"spec_satisfied", res.Diagnostics.SpecSatisfied,
		"partial", res.Diagnostics.Partial,
		"degraded", res.Diagnostics.Degraded,
	}
	if elapsed >= s.cfg.SlowQuery {
		s.cfg.Logger.Warn("slow query", logAttrs...)
	} else {
		s.cfg.Logger.Debug("query", logAttrs...)
	}

	// Hand the served answer to the accuracy auditor. Offer never blocks
	// and never mutates res; whether this answer gets a ground-truth
	// re-execution was decided by a coin fixed before the estimate
	// existed, so the audit stream is an unbiased sample of production.
	s.aud.Offer(res, req.SQL)

	contractVerdict := ""
	if c := res.Diagnostics.Contract; c != nil {
		contractVerdict = string(c.Verdict)
	}
	// File the outcome with the workload-insight registry. Like the
	// auditor's Offer, this only observes: it never mutates res and
	// cannot fail the query.
	if s.insight != nil {
		s.insight.Offer(req.SQL, insight.Observation{
			Technique:       tech,
			LatencyMS:       latencyMS,
			RowsScanned:     res.Diagnostics.Counters.RowsScanned,
			RelWidth:        res.MaxRelHalfWidth(),
			Approximate:     res.Guarantee != core.GuaranteeExact,
			Degraded:        res.Diagnostics.Degraded,
			Extrapolated:    res.Diagnostics.Shards != nil && res.Diagnostics.Shards.Extrapolated,
			Partial:         res.Diagnostics.Partial,
			ContractVerdict: contractVerdict,
		})
	}
	s.recordQuery(telemetry.QueryRecord{
		Start: start, SQL: req.SQL, Mode: req.Mode,
		Fingerprint: res.Diagnostics.Fingerprint,
		Technique:   tech, Status: http.StatusOK,
		LatencyMS:       latencyMS,
		RowsScanned:     res.Diagnostics.Counters.RowsScanned,
		Degraded:        res.Diagnostics.Degraded,
		DegradedFrom:    degradedFrom,
		Partial:         res.Diagnostics.Partial,
		ContractVerdict: contractVerdict,
	}, prof)

	resp := encodeResult(res)
	resp.DegradedFrom = degradedFrom
	if prof != nil {
		resp.TraceID = prof.TraceID
	}
	if req.Trace && prof != nil {
		resp.Trace = prof
	}
	writeJSON(w, http.StatusOK, resp)
}

// execute routes the request to the right façade call.
func (s *Server) execute(ctx context.Context, req QueryRequest) (*core.Result, error) {
	spec := core.DefaultErrorSpec
	if req.RelError > 0 {
		spec = core.ErrorSpec{RelError: req.RelError, Confidence: req.Confidence}
		if spec.Confidence <= 0 {
			spec.Confidence = core.DefaultErrorSpec.Confidence
		}
	}
	if req.Contract {
		// Contract execution pins an engine: pilot-sized two-stage runs
		// exist only for the sampling engines. "auto" takes the online
		// engine, the workhorse; exact/synopsis/as-written have nothing to
		// size, so requesting a contract there is a caller error.
		switch req.Mode {
		case "", "auto", "online":
			return s.db.QueryContractOnContext(ctx, core.TechniqueOnline, req.SQL, spec)
		case "ola":
			return s.db.QueryContractOnContext(ctx, core.TechniqueOLA, req.SQL, spec)
		case "offline":
			return s.db.QueryContractOnContext(ctx, core.TechniqueOffline, req.SQL, spec)
		default:
			return nil, fmt.Errorf("mode %q does not support contract execution (want auto, online, ola, or offline)", req.Mode)
		}
	}
	switch req.Mode {
	case "", "auto":
		return s.db.QueryApproxContext(ctx, req.SQL, spec)
	case "exact":
		return s.db.QueryContext(ctx, req.SQL)
	case "online":
		return s.db.QueryOnlineContext(ctx, req.SQL, spec)
	case "offline":
		return s.db.QueryOfflineContext(ctx, req.SQL, spec)
	case "ola":
		return s.db.QueryOLAContext(ctx, req.SQL, spec)
	case "synopsis":
		return s.db.QuerySynopsisContext(ctx, req.SQL, spec)
	case "as-written":
		return s.db.QueryAsWrittenContext(ctx, req.SQL, spec)
	default:
		return nil, fmt.Errorf("unknown mode %q", req.Mode)
	}
}

// ShardGroupStatus is one sharded table's shape plus live per-shard
// health, for GET /shards.
type ShardGroupStatus struct {
	shard.GroupSummary
	Health []shard.Health `json:"health"`
}

// handleShards reports every sharded table's layout and per-shard health
// (row counts, sample freshness, breaker state and trip counts).
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m := s.db.Shards()
	out := []ShardGroupStatus{}
	for _, name := range m.Names() {
		g := m.Get(name)
		if g == nil {
			continue
		}
		out = append(out, ShardGroupStatus{GroupSummary: g.Summary(), Health: g.Health()})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTables lists catalog tables with schemas and stored samples.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	cat := s.db.Catalog()
	off := s.db.OfflineEngine()
	var out []TableInfo
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			continue // dropped between Names and Table
		}
		info := TableInfo{Name: name, Rows: t.NumRows(), Version: t.Version()}
		for _, def := range t.Schema() {
			info.Columns = append(info.Columns, ColumnInfo{Name: def.Name, Type: def.Type.String()})
		}
		info.Samples = sampleInfos(off, name)
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func sampleInfos(off *core.OfflineEngine, table string) []SampleInfo {
	var out []SampleInfo
	for _, smp := range off.Samples(table) {
		out = append(out, SampleInfo{
			Name:  smp.Name,
			QCS:   smp.QCS,
			Rows:  smp.Rows,
			Rate:  smp.Rate,
			Cap:   smp.Cap,
			Fresh: smp.Fresh(off.Catalog),
		})
	}
	return out
}

// handleBuildSamples builds (and optionally profiles) offline samples.
func (s *Server) handleBuildSamples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BuildSamplesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, "missing table")
		return
	}
	// Sample builds scan the base table — admit them like queries so
	// they cannot starve the worker pool either.
	release, err := s.adm.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, ErrShed) {
			s.met.Inc("queries_shed_total")
			writeError(w, http.StatusTooManyRequests, "overloaded")
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer release()

	if err := s.db.BuildOfflineSamples(req.Table, req.QCS); err != nil {
		s.met.Inc("queries_errors_total")
		writeError(w, http.StatusBadRequest, "build samples: %v", err)
		return
	}
	if len(req.Profile) > 0 {
		if err := s.db.ProfileOffline(req.Profile...); err != nil {
			s.met.Inc("queries_errors_total")
			writeError(w, http.StatusBadRequest, "profile: %v", err)
			return
		}
	}
	s.met.Inc("samples_built_total")
	writeJSON(w, http.StatusOK, BuildSamplesResponse{
		Table:   req.Table,
		Samples: sampleInfos(s.db.OfflineEngine(), req.Table),
	})
}

// handleMetrics serves the metrics snapshot: JSON by default, Prometheus
// text exposition format with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	gauges := map[string]int64{
		"queue_depth":       int64(s.adm.QueueDepth()),
		"in_flight":         int64(s.adm.InFlight()),
		"workers":           int64(s.adm.Workers()),
		"queue_capacity":    int64(s.adm.QueueCap()),
		"max_query_workers": int64(s.cfg.MaxQueryWorkers),
		"uptime_seconds":    int64(time.Since(s.start).Seconds()),
	}
	s.engineTrippedGauges(gauges)
	if s.insight != nil {
		gauges["workload_fingerprints"] = int64(s.insight.Len())
	}
	if s.aud != nil {
		rep := s.aud.Report()
		gauges["audit_backlog"] = int64(rep.Backlog)
		for _, t := range rep.Tables {
			v := int64(0)
			if t.Stale {
				v = 1
			}
			gauges[Key("sample_stale", "table", t.Table)] = v
		}
	}
	gaugesF := s.sloGauges()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.WritePrometheus(w, gauges, gaugesF, BuildInfo())
		return
	}
	snap := s.met.Snapshot(gauges)
	snap.GaugesF = gaugesF
	snap.Info = BuildInfo()
	writeJSON(w, http.StatusOK, snap)
}

// handleHealthz reports liveness, drain state, and build identity.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.adm.Draining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":         state,
		"tables":         len(s.db.Catalog().Names()),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"build":          BuildInfo(),
	})
}
