package server

// Contract execution over HTTP: the request flag routes through the
// two-stage contract path, the response carries the full contract block
// (sizing, cost, verdict), verdict outcomes are metered, infeasible
// contracts come back refused rather than silently approximated, and the
// fail-fast/no-degrade interaction keeps contract answers honest when
// the primary engine is faulted.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	aqp "repro"
	"repro/internal/contract"
	"repro/internal/fault"
)

// contractDB builds the shared table with sampling forced on: the
// contract paths are the subject here, not the advisor's "too small to
// sample" shortcut.
func contractDB(t testing.TB, n int) *aqp.DB {
	t.Helper()
	return buildDB(t, n,
		aqp.WithOnlineConfig(aqp.OnlineConfig{DefaultRate: 0.5, MinTableRows: 1, Seed: 42}),
		aqp.WithOLAConfig(aqp.OLAConfig{ChunkRows: 2048, Seed: 42}),
	)
}

// TestContractEndpoint: a contract query answers with the contract block
// and a non-exact guarantee consistent with the verdict, and the verdict
// is counted in queries_contract_total.
func TestContractEndpoint(t *testing.T) {
	db := contractDB(t, 20000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ok, bad := postQuery(t, ts.URL, QueryRequest{
		SQL:      "SELECT SUM(x) FROM t WITH ERROR 2% CONFIDENCE 95%",
		Contract: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contract query: status %d (%s)", resp.StatusCode, bad.Error)
	}
	c := ok.Contract
	if c == nil {
		t.Fatalf("no contract block in response: %+v", ok)
	}
	if c.TargetRelError != 0.02 || c.Confidence != 0.95 {
		t.Fatalf("contract echo wrong: target=%v conf=%v", c.TargetRelError, c.Confidence)
	}
	if c.PilotRows <= 0 || c.FinalFraction <= 0 {
		t.Fatalf("contract cost not accounted: %+v", c)
	}
	switch c.Verdict {
	case contract.VerdictMet:
		if ok.Guarantee != "a-priori" {
			t.Fatalf("met verdict with guarantee %q", ok.Guarantee)
		}
	case contract.VerdictMissed:
		if ok.Guarantee == "a-priori" {
			t.Fatalf("missed verdict kept an a-priori guarantee")
		}
	default:
		t.Fatalf("unexpected verdict %q for a feasible contract", c.Verdict)
	}
	if len(ok.Items) == 0 || !ok.Items[0][0].HasCI {
		t.Fatalf("contract answer has no CI: %+v", ok.Items)
	}

	snap := getMetrics(t, ts.URL)
	if snap.Counters[Key("queries_contract_total", "outcome", string(c.Verdict))] == 0 {
		t.Fatalf("verdict %q not metered: %v", c.Verdict, snap.Counters)
	}

	// The flag alone works too: spec fields instead of the SQL clause.
	resp, ok, bad = postQuery(t, ts.URL, QueryRequest{
		SQL: "SELECT SUM(x) FROM t", Contract: true,
		RelError: 0.05, Confidence: 0.95, Mode: "ola",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ola contract query: status %d (%s)", resp.StatusCode, bad.Error)
	}
	if ok.Contract == nil || ok.Contract.TargetRelError != 0.05 {
		t.Fatalf("spec-field contract not honored: %+v", ok.Contract)
	}
}

// TestContractInfeasibleOverHTTP: a target whose required sampling
// fraction exceeds the deployment's admission budget is refused —
// verdict infeasible, no a-priori guarantee, and the refusal flagged in
// messages — while still returning a best-effort answer with an honest
// a-posteriori CI.
func TestContractInfeasibleOverHTTP(t *testing.T) {
	db := buildDB(t, 20000,
		aqp.WithOnlineConfig(aqp.OnlineConfig{DefaultRate: 0.5, MinTableRows: 1, Seed: 42}),
		aqp.WithContractConfig(aqp.ContractConfig{BudgetFraction: 0.2}),
	)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ok, bad := postQuery(t, ts.URL, QueryRequest{
		SQL:      "SELECT SUM(x) FROM t WITH ERROR 0.5% CONFIDENCE 99%",
		Contract: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infeasible contract: status %d (%s)", resp.StatusCode, bad.Error)
	}
	c := ok.Contract
	if c == nil || c.Verdict != contract.VerdictInfeasible || !c.Infeasible {
		t.Fatalf("want infeasible refusal, got %+v", c)
	}
	if ok.Guarantee == "a-priori" {
		t.Fatal("infeasible contract reported a-priori")
	}
	flagged := false
	for _, m := range ok.Messages {
		if strings.Contains(m, contract.InfeasibleFlag) {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("refusal not flagged in messages: %v", ok.Messages)
	}
}

// TestContractModeRejected: contract execution is a property of the
// sampling paths; exact and synopsis modes must reject the flag up
// front with a 400, not quietly ignore it.
func TestContractModeRejected(t *testing.T) {
	db := buildDB(t, 1000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, mode := range []string{"exact", "synopsis"} {
		resp, _, bad := postQuery(t, ts.URL, QueryRequest{
			SQL: "SELECT SUM(x) FROM t", Contract: true, Mode: mode,
			RelError: 0.05, Confidence: 0.95,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mode %q + contract: status %d, want 400", mode, resp.StatusCode)
		}
		if !strings.Contains(bad.Error, "contract") {
			t.Fatalf("mode %q: error does not mention contract: %q", mode, bad.Error)
		}
	}
}

// TestContractNoDegradeFailFast: with the ladder disabled, a faulted
// primary engine surfaces as a typed error instead of a silently
// degraded contract answer; with the ladder on, the fallback rung runs
// the contract itself, so the response still carries a verdict and
// discloses the degrade.
func TestContractNoDegradeFailFast(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	db := contractDB(t, 20000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "core.online", Kind: fault.KindPanic, P: 1},
	}})

	req := QueryRequest{
		SQL:      "SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%",
		Contract: true, Mode: "online",
	}
	req.NoDegrade = true
	resp, _, bad := postQuery(t, ts.URL, req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("no_degrade faulted contract: status %d (%s), want 500",
			resp.StatusCode, bad.Error)
	}

	req.NoDegrade = false
	resp, ok, bad := postQuery(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degradable faulted contract: status %d (%s)", resp.StatusCode, bad.Error)
	}
	if !ok.Degraded || ok.DegradedFrom == "" {
		t.Fatalf("ladder fallback not disclosed: degraded=%v from=%q", ok.Degraded, ok.DegradedFrom)
	}
	if ok.Contract == nil {
		t.Fatal("fallback rung dropped the contract block")
	}
	if ok.Contract.Verdict == "" {
		t.Fatalf("fallback contract has no verdict: %+v", ok.Contract)
	}
}
