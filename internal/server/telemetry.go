package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// initTelemetry wires the observability layer when Config.Telemetry is
// set: flight recorder, span exporter, time-series store, and SLO
// engine. The store's cadence ticker is NOT started here — cmd/aqpd
// starts it; tests drive Snap explicitly for determinism.
func (s *Server) initTelemetry(cfg Config) {
	s.flight = telemetry.NewRecorder(telemetry.RecorderConfig{Queries: cfg.FlightQueries})
	s.spans = telemetry.NewSpanExporter("aqpd", 0)
	s.flightSink = cfg.FlightSink
	s.tstore = telemetry.NewStore(telemetry.StoreConfig{
		Step:    cfg.TelemetryStep,
		Window:  cfg.TelemetryWindow,
		Collect: s.collectSample,
		// Every stored sample re-evaluates the objectives, so fast-burn
		// detection latency is one snapshot step.
		OnSnap: func(telemetry.Sample) { s.evalSLO() },
	})
	s.slo = telemetry.NewSLO(s.tstore, cfg.Objectives, s.onFastBurn)
	s.initInsight(cfg)
	// Process-global fault-fire feed. Installed only when telemetry is
	// on so chaos tests without telemetry see the bare injection path.
	flight := s.flight
	fault.SetOnFire(func(point string, kind fault.Kind) {
		flight.AddEvent(telemetry.Event{
			Kind: "fault_fire", Name: point, Detail: kind.String(), Shard: -1,
		})
	})
}

// TelemetryStore returns the time-series store (nil when telemetry is
// disabled). cmd/aqpd starts its cadence ticker; tests drive Snap.
func (s *Server) TelemetryStore() *telemetry.Store { return s.tstore }

// FlightRecorder returns the flight recorder (nil when disabled).
func (s *Server) FlightRecorder() *telemetry.Recorder { return s.flight }

// SLOEngine returns the SLO engine (nil when disabled).
func (s *Server) SLOEngine() *telemetry.SLO { return s.slo }

// FlightBundle assembles a flight-recorder dump with current SLO
// statuses and build identity attached.
func (s *Server) FlightBundle(reason string) telemetry.Bundle {
	b := s.flight.Snapshot(reason)
	if s.slo != nil {
		b.SLO = s.slo.Last()
		if len(b.SLO) == 0 {
			// Dump requested before the first snapshot cadence (e.g. an
			// early SIGQUIT): evaluate on demand so the bundle still
			// carries SLO state. Safe even from the fast-burn callback —
			// that path always has a cached evaluation.
			b.SLO = s.slo.Evaluate()
		}
	}
	b.Info = BuildInfo()
	return b
}

// collectSample is the store's collector: one registry copy plus the
// instantaneous gauges.
func (s *Server) collectSample() telemetry.Sample {
	gauges := map[string]float64{
		"queue_depth": float64(s.adm.QueueDepth()),
		"in_flight":   float64(s.adm.InFlight()),
	}
	if s.aud != nil {
		gauges["audit_backlog"] = float64(s.aud.Report().Backlog)
	}
	if s.insight != nil {
		gauges["workload_fingerprints"] = float64(s.insight.Len())
	}
	return s.met.TelemetrySample(gauges)
}

// evalSLO re-evaluates every objective; the engine caches the statuses
// for the /metrics gauges and bundle dumps.
func (s *Server) evalSLO() {
	if s.slo == nil {
		return
	}
	s.slo.Evaluate()
}

// sloGauges renders the last-evaluated objective statuses as float
// gauge families.
func (s *Server) sloGauges() map[string]float64 {
	if s.slo == nil {
		return nil
	}
	st := s.slo.Last()
	if len(st) == 0 {
		return nil
	}
	out := make(map[string]float64, 3*len(st))
	for _, o := range st {
		name := EscapeLabelValue(o.Objective.Name)
		out[fmt.Sprintf(`slo_burn_rate{objective="%s",window="fast"}`, name)] = o.Fast.Burn
		out[fmt.Sprintf(`slo_burn_rate{objective="%s",window="slow"}`, name)] = o.Slow.Burn
		out[fmt.Sprintf(`slo_error_budget_remaining{objective="%s"}`, name)] = o.BudgetRemaining
	}
	return out
}

// onFastBurn is the SLO engine's edge-triggered page: dump the flight
// recorder so the postmortem record is captured while the offending
// queries are still in the rings.
func (s *Server) onFastBurn(st telemetry.ObjectiveStatus) {
	s.met.Inc(Key("slo_fast_burn_total", "objective", st.Objective.Name))
	s.cfg.Logger.Error("SLO fast burn",
		"objective", st.Objective.Name,
		"fast_burn", st.Fast.Burn, "slow_burn", st.Slow.Burn,
		"budget_remaining", st.BudgetRemaining)
	b := s.FlightBundle("slo_fast_burn:" + st.Objective.Name)
	if s.flightSink != nil {
		s.flightSink(b)
	}
}

// onBreakerTransition files every circuit-breaker state change as a
// flight event. Installed on every breaker at construction; a nil flight
// recorder (telemetry off) makes it a no-op.
func (s *Server) onBreakerTransition(engine string, from, to fault.BreakerState) {
	if s.flight == nil {
		return
	}
	s.flight.AddEvent(telemetry.Event{
		Kind: "breaker", Name: engine,
		Detail: from.String() + "->" + to.String(), Shard: -1,
	})
}

// recordQuery files one completed (or failed) query with the flight
// recorder and exports its spans. prof may be nil (tracing off).
func (s *Server) recordQuery(qr telemetry.QueryRecord, prof *trace.Profile) {
	if s.flight == nil {
		return
	}
	if prof != nil {
		qr.Spans = prof
		qr.TraceID = prof.TraceID
		s.spans.Export(prof)
	}
	s.flight.Record(qr)
}

// HistoryPoint is one derived time-series point.
type HistoryPoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// HistoryResponse is the body of GET /metrics/history.
type HistoryResponse struct {
	Window string `json:"window"`
	Step   string `json:"step"`
	// Samples are the raw snapshots, oldest first.
	Samples []telemetry.Sample `json:"samples"`
	// Rates are per-second counter-family rates between consecutive
	// samples, keyed by the requested family (?rate=queries_total).
	Rates map[string][]HistoryPoint `json:"rates,omitempty"`
	// Quantiles are per-step histogram quantiles of the observations
	// made between consecutive samples, keyed by the requested
	// "q:family" spec (?quantile=0.99:query_latency_ms).
	Quantiles map[string][]HistoryPoint `json:"quantiles,omitempty"`
}

// handleMetricsHistory serves windowed metric history with server-side
// rate and quantile-over-time derivations.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.tstore == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled (start aqpd with -telemetry)")
		return
	}
	q := r.URL.Query()
	window := s.tstore.Window()
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad window %q", v)
			return
		}
		window = d
	}
	step := s.tstore.Step()
	if v := q.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad step %q", v)
			return
		}
		step = d
	}
	samples := s.tstore.History(window, step)
	resp := HistoryResponse{
		Window:  window.String(),
		Step:    step.String(),
		Samples: samples,
	}
	for _, fam := range q["rate"] {
		pts := make([]HistoryPoint, 0, len(samples))
		for i := 1; i < len(samples); i++ {
			pts = append(pts, HistoryPoint{T: samples[i].T, V: telemetry.Rate(samples[i-1], samples[i], fam)})
		}
		if resp.Rates == nil {
			resp.Rates = map[string][]HistoryPoint{}
		}
		resp.Rates[fam] = pts
	}
	for _, spec := range q["quantile"] {
		qv, fam, ok := parseQuantileSpec(spec)
		if !ok {
			writeError(w, http.StatusBadRequest, "bad quantile %q (want q:family, e.g. 0.99:query_latency_ms)", spec)
			return
		}
		pts := make([]HistoryPoint, 0, len(samples))
		for i := 1; i < len(samples); i++ {
			older, _ := telemetry.FamilyHistSum(samples[i-1].Hists, fam)
			newer, found := telemetry.FamilyHistSum(samples[i].Hists, fam)
			if !found {
				continue
			}
			d := telemetry.DeltaHist(older, newer)
			v := telemetry.HistQuantile(d, qv)
			if math.IsNaN(v) {
				// No observations in this step: omit the point rather
				// than emit NaN, which JSON cannot carry.
				continue
			}
			pts = append(pts, HistoryPoint{T: samples[i].T, V: v})
		}
		if resp.Quantiles == nil {
			resp.Quantiles = map[string][]HistoryPoint{}
		}
		resp.Quantiles[spec] = pts
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseQuantileSpec(spec string) (q float64, family string, ok bool) {
	i := strings.IndexByte(spec, ':')
	if i <= 0 || i == len(spec)-1 {
		return 0, "", false
	}
	q, err := strconv.ParseFloat(spec[:i], 64)
	if err != nil || q < 0 || q > 1 {
		return 0, "", false
	}
	return q, spec[i+1:], true
}

// SLOResponse is the body of GET /slo.
type SLOResponse struct {
	EvaluatedAt time.Time                   `json:"evaluated_at"`
	Objectives  []telemetry.ObjectiveStatus `json:"objectives"`
}

// handleSLO serves a fresh evaluation of every objective.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.slo == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled (start aqpd with -telemetry)")
		return
	}
	st := s.slo.Evaluate()
	writeJSON(w, http.StatusOK, SLOResponse{EvaluatedAt: time.Now(), Objectives: st})
}

// handleFlightRecord dumps the flight recorder on demand.
func (s *Server) handleFlightRecord(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled (start aqpd with -telemetry)")
		return
	}
	writeJSON(w, http.StatusOK, s.FlightBundle("http"))
}

// handleSpans serves the OTLP-shaped span export feed.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.spans == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled (start aqpd with -telemetry)")
		return
	}
	writeJSON(w, http.StatusOK, s.spans.Feed())
}
