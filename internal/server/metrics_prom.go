package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4: one `# TYPE` line per family, counter and gauge series
// as-is, histograms expanded into cumulative `_bucket{le="..."}` series
// plus `_sum` and `_count`. Gauges and build info are supplied by the
// caller like in Snapshot; info becomes a constant `aqpd_build_info 1`
// gauge with the identity as labels, the standard Prometheus idiom for
// exposing versions.
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]int64, info map[string]string) {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Counters, grouped into families by base name.
	counterFamilies := make(map[string][]string) // family -> rendered series lines
	for k, v := range m.counters {
		fam, _ := splitKey(k)
		counterFamilies[fam] = append(counterFamilies[fam], fmt.Sprintf("%s %d\n", k, v))
	}
	for _, fam := range sortedKeys(counterFamilies) {
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		series := counterFamilies[fam]
		sort.Strings(series)
		for _, line := range series {
			io.WriteString(w, line)
		}
	}

	// Gauges, grouped into families like counters: labeled gauges (e.g.
	// sample_stale{table="events"}) must share one # TYPE line per family.
	gaugeFamilies := make(map[string][]string)
	for k, v := range gauges {
		fam, _ := splitKey(k)
		gaugeFamilies[fam] = append(gaugeFamilies[fam], fmt.Sprintf("%s %d\n", k, v))
	}
	for _, fam := range sortedKeys(gaugeFamilies) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		series := gaugeFamilies[fam]
		sort.Strings(series)
		for _, line := range series {
			io.WriteString(w, line)
		}
	}
	if len(info) > 0 {
		var labels []string
		for _, k := range sortedKeys(info) {
			labels = append(labels, k+`="`+EscapeLabelValue(info[k])+`"`)
		}
		fmt.Fprintf(w, "# TYPE aqpd_build_info gauge\naqpd_build_info{%s} 1\n", strings.Join(labels, ","))
	}

	// Histograms: buckets are cumulative in the exposition format, unlike
	// the per-bucket counts kept internally.
	histFamilies := make(map[string][]string) // family -> series keys
	for k := range m.hists {
		fam, _ := splitKey(k)
		histFamilies[fam] = append(histFamilies[fam], k)
	}
	for _, fam := range sortedKeys(histFamilies) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		series := histFamilies[fam]
		sort.Strings(series)
		for _, k := range series {
			h := m.hists[k]
			_, labels := splitKey(k)
			var cum int64
			for i, c := range h.counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatFloat(h.bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, joinLabels(labels, `le="`+le+`"`), cum)
			}
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", fam, suffix, formatFloat(h.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, h.total)
		}
	}
}

// splitKey separates name{label="v"} into the family name and the label
// body (without braces); an unlabeled key returns ("name", "").
func splitKey(k string) (fam, labels string) {
	i := strings.IndexByte(k, '{')
	if i < 0 {
		return k, ""
	}
	return k[:i], strings.TrimSuffix(k[i+1:], "}")
}

// joinLabels merges an existing label body with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
