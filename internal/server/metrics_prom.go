package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// helpText is the HELP line registry: one human-readable sentence per
// metric family. Families without an entry get a generated fallback so
// every exposed family carries a HELP line.
var helpText = map[string]string{
	"queries_total":               "Completed queries by technique.",
	"queries_errors_total":        "Queries that returned an error.",
	"queries_shed_total":          "Queries shed by admission control (429).",
	"queries_abandoned_total":     "Queries whose client left while queued.",
	"queries_deadline_total":      "Queries that exhausted their deadline with no estimate.",
	"queries_partial_total":       "Deadline-truncated online-aggregation answers.",
	"queries_degraded_total":      "Queries answered by a degradation-ladder fallback technique.",
	"queries_contract_total":      "Contract executions by verdict.",
	"queries_by_guarantee":        "Completed queries by accuracy guarantee.",
	"queries_spec_met_total":      "Approximate answers whose realized CI met the requested error spec.",
	"queries_spec_missed_total":   "Approximate answers whose realized CI missed the requested error spec.",
	"query_latency_ms":            "Query latency in milliseconds by technique.",
	"query_latency_seconds":       "Query latency in seconds by technique (unit-correct copy of query_latency_ms).",
	"query_rows_scanned":          "Rows scanned per query by technique.",
	"query_ci_rel_width":          "Realized relative CI half-width of approximate answers.",
	"query_ci_target_width":       "Requested relative CI half-width of approximate answers.",
	"query_panics_total":          "Recovered query panics by engine.",
	"rows_scanned_total":          "Total rows scanned across all queries.",
	"samples_built_total":         "Offline sample-build operations completed.",
	"audits_total":                "Ground-truth audit executions by technique.",
	"audit_lag_ms":                "Lag from answer served to audit verdict, in milliseconds.",
	"audit_lag_seconds":           "Lag from answer served to audit verdict, in seconds (unit-correct copy of audit_lag_ms).",
	"audit_covered_total":         "Audited answers whose CI covered the exact value.",
	"audit_missed_total":          "Audited answers whose CI missed the exact value.",
	"audit_rel_error":             "Realized relative error of audited answers.",
	"audit_contract_held_total":   "Audited contract answers whose contract held.",
	"audit_contract_broken_total": "Audited contract answers whose contract broke.",
	"coverage_violation_total":    "Windows where audit CI coverage fell below the confidence floor.",
	"contract_violation_total":    "Windows where the contract hold-rate fell below its floor.",
	"audit_dropped_total":         "Audit candidates shed because the audit queue was full.",
	"audit_deduped_total":         "Audit candidates deduplicated against a pending audit.",
	"audit_errors_total":          "Audit ground-truth executions that failed.",
	"audit_unmatched_total":       "Audit results that no longer matched a pending claim.",
	"audit_panics_total":          "Recovered audit-lane panics.",
	"audit_backlog":               "Audits waiting for idle capacity.",
	"sample_stale":                "1 when a table's offline samples are stale relative to its version.",
	"sample_stale_detected_total": "Audit-lane detections of stale offline samples.",
	"breaker_trips_total":         "Circuit-breaker trips by engine.",
	"breaker_open_total":          "Queries rejected by an open circuit breaker.",
	"engine_tripped":              "1 when an engine's circuit breaker is open.",
	"shard_exec_total":            "Per-shard scatter outcomes by table, shard, and outcome.",
	"queue_depth":                 "Queries waiting for a worker slot.",
	"in_flight":                   "Queries currently executing.",
	"workers":                     "Worker-pool size.",
	"queue_capacity":              "Admission queue capacity.",
	"max_query_workers":           "Per-query morsel-parallel worker cap.",
	"uptime_seconds":              "Server uptime in seconds.",
	"aqpd_build_info":             "Build identity as labels; value is always 1.",
	"slo_burn_rate":               "SLO error-budget burn rate by objective and window (1.0 = sustainable pace).",
	"slo_error_budget_remaining":  "SLO error budget remaining over the slow window (1 = untouched, <0 = overdrawn).",
}

func writeHelpType(w io.Writer, fam, typ string) {
	help := helpText[fam]
	if help == "" {
		help = "aqpd metric " + fam + "."
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, help, fam, typ)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4: `# HELP` and `# TYPE` lines per family, counter and
// gauge series as-is, histograms expanded into cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Millisecond
// latency histogram families additionally get a `_seconds`-suffixed
// unit-correct copy (bounds and sum scaled by 1e-3) under the SI-unit
// name Prometheus conventions expect, while the original ms families
// keep their names for dashboard compatibility. Gauges and build info
// are supplied by the caller like in Snapshot; gaugesF carries
// float-valued gauges (SLO burn rates); info becomes a constant
// `aqpd_build_info 1` gauge with the identity as labels, the standard
// Prometheus idiom for exposing versions.
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]int64, gaugesF map[string]float64, info map[string]string) {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Counters, grouped into families by base name.
	counterFamilies := make(map[string][]string) // family -> rendered series lines
	for k, v := range m.counters {
		fam, _ := splitKey(k)
		counterFamilies[fam] = append(counterFamilies[fam], fmt.Sprintf("%s %d\n", k, v))
	}
	for _, fam := range sortedKeys(counterFamilies) {
		writeHelpType(w, fam, "counter")
		series := counterFamilies[fam]
		sort.Strings(series)
		for _, line := range series {
			io.WriteString(w, line)
		}
	}

	// Gauges, grouped into families like counters: labeled gauges (e.g.
	// sample_stale{table="events"}) must share one # TYPE line per family.
	gaugeFamilies := make(map[string][]string)
	for k, v := range gauges {
		fam, _ := splitKey(k)
		gaugeFamilies[fam] = append(gaugeFamilies[fam], fmt.Sprintf("%s %d\n", k, v))
	}
	for k, v := range gaugesF {
		fam, _ := splitKey(k)
		gaugeFamilies[fam] = append(gaugeFamilies[fam], fmt.Sprintf("%s %s\n", k, formatFloat(v)))
	}
	for _, fam := range sortedKeys(gaugeFamilies) {
		writeHelpType(w, fam, "gauge")
		series := gaugeFamilies[fam]
		sort.Strings(series)
		for _, line := range series {
			io.WriteString(w, line)
		}
	}
	if len(info) > 0 {
		var labels []string
		for _, k := range sortedKeys(info) {
			labels = append(labels, k+`="`+EscapeLabelValue(info[k])+`"`)
		}
		writeHelpType(w, "aqpd_build_info", "gauge")
		fmt.Fprintf(w, "aqpd_build_info{%s} 1\n", strings.Join(labels, ","))
	}

	// Histograms: buckets are cumulative in the exposition format, unlike
	// the per-bucket counts kept internally.
	histFamilies := make(map[string][]string) // family -> series keys
	for k := range m.hists {
		fam, _ := splitKey(k)
		histFamilies[fam] = append(histFamilies[fam], k)
	}
	for _, fam := range sortedKeys(histFamilies) {
		series := histFamilies[fam]
		sort.Strings(series)
		writeHistFamily(w, fam, series, m.hists, 1)
		// Unit-correct copy for millisecond families: same observations,
		// bounds and sum scaled to seconds.
		if base, ok := strings.CutSuffix(fam, "_ms"); ok {
			writeHistFamily(w, base+"_seconds", series, m.hists, 1e-3)
		}
	}
}

// writeHistFamily renders one histogram family, scaling bounds and sums
// by scale (1 renders as-is; 1e-3 converts ms to seconds).
func writeHistFamily(w io.Writer, fam string, seriesKeys []string, hists map[string]*histogram, scale float64) {
	writeHelpType(w, fam, "histogram")
	for _, k := range seriesKeys {
		h := hists[k]
		_, labels := splitKey(k)
		var cum int64
		for i, c := range h.counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i] * scale)
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, joinLabels(labels, `le="`+le+`"`), cum)
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", fam, suffix, formatFloat(h.sum*scale))
		fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, h.total)
	}
}

// splitKey separates name{label="v"} into the family name and the label
// body (without braces); an unlabeled key returns ("name", "").
func splitKey(k string) (fam, labels string) {
	i := strings.IndexByte(k, '{')
	if i < 0 {
		return k, ""
	}
	return k[:i], strings.TrimSuffix(k[i+1:], "}")
}

// joinLabels merges an existing label body with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
