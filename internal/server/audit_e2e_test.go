package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	aqp "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/workload"
)

// Binomial acceptance band for empirical CI coverage over e2eTrials
// independent audits of a nominal-95% estimator, mirroring the engine-
// level harness in internal/core/coverage_test.go.
const (
	e2eTrials   = 500
	e2eLowBand  = 0.89
	e2eHighBand = 1.0
	// e2eWindowRows sizes the disjoint ev_ts windows; each window is one
	// independent coverage trial under the engine's fixed sampler seed.
	e2eWindowRows = 200
)

// auditEvents generates the seeded event log sized for the coverage
// windows and opens a DB over it with a deterministic online engine.
func auditEvents(t testing.TB) (*workload.Events, *aqp.DB) {
	t.Helper()
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 101, Rows: e2eTrials * e2eWindowRows, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := aqp.Open(ev.Catalog, aqp.WithOnlineConfig(core.OnlineConfig{
		DefaultRate: 0.5, MinTableRows: 1, Seed: 42,
	}))
	return ev, db
}

// windowSQL is the i-th disjoint coverage-trial query: the sampler's
// per-row decisions are a pure function of (engine seed, row index), so
// disjoint row windows are independent Bernoulli trials of the CI.
func windowSQL(i int) string {
	return fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= %d AND ev_ts < %d",
		i*e2eWindowRows, (i+1)*e2eWindowRows)
}

func getAudit(t testing.TB, url string) audit.Report {
	t.Helper()
	resp, err := http.Get(url + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep audit.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func drainAuditor(t testing.TB, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Auditor().Drain(ctx); err != nil {
		t.Fatalf("audit drain: %v (backlog %d)", err, srv.Auditor().Backlog())
	}
}

// Serving 500 approximate queries with auditing at 100% must yield an
// empirical CI coverage inside the binomial band of the nominal 95%
// confidence — the end-to-end statement that the served error bars mean
// what they say, measured by the production audit lane itself.
func TestAuditE2ECoverageInBinomialBand(t *testing.T) {
	_, db := auditEvents(t)
	srv := New(db, Config{
		Workers:       4,
		AuditFraction: 1,
		AuditQueueCap: e2eTrials + 16,
		AuditWindow:   e2eTrials + 16,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for i := 0; i < e2eTrials; i++ {
		resp, ok, bad := postQuery(t, ts.URL, QueryRequest{
			SQL: windowSQL(i), Mode: "online", RelError: 0.5, Confidence: 0.95,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, bad.Error)
		}
		if len(ok.Items) == 0 || !ok.Items[0][0].HasCI {
			t.Fatalf("query %d served without CI: %+v", i, ok)
		}
	}
	drainAuditor(t, srv)

	rep := getAudit(t, ts.URL)
	if !rep.Enabled || rep.Fraction != 1 {
		t.Fatalf("audit config: %+v", rep)
	}
	if rep.Offered != e2eTrials || rep.Dropped != 0 || rep.Errors != 0 {
		t.Fatalf("audit flow: offered %d dropped %d errors %d",
			rep.Offered, rep.Dropped, rep.Errors)
	}
	if rep.Audited != e2eTrials {
		t.Fatalf("audited %d of %d", rep.Audited, e2eTrials)
	}
	onlineTech := string(core.TechniqueOnline)
	var tc *audit.TechniqueCoverage
	for i := range rep.Techniques {
		if rep.Techniques[i].Technique == onlineTech && rep.Techniques[i].Aggregate == "SUM" {
			tc = &rep.Techniques[i]
		}
	}
	if tc == nil {
		t.Fatalf("no online/SUM estimator in %+v", rep.Techniques)
	}
	if tc.Audits != e2eTrials {
		t.Fatalf("estimator saw %d audits, want %d", tc.Audits, e2eTrials)
	}
	if tc.Coverage < e2eLowBand || tc.Coverage > e2eHighBand {
		t.Fatalf("empirical coverage %.3f outside binomial band [%.2f, %.2f] (covered %d/%d)",
			tc.Coverage, e2eLowBand, e2eHighBand, tc.Covered, tc.Audits)
	}
	// The Wilson interval must be consistent with the point estimate and
	// the budget must not be burning at nominal coverage.
	if tc.WilsonLo > tc.Coverage || tc.WilsonHi < tc.Coverage {
		t.Fatalf("wilson [%v, %v] excludes point %v", tc.WilsonLo, tc.WilsonHi, tc.Coverage)
	}
	if !tc.BudgetOK {
		t.Fatalf("budget burning at %.3f coverage: %+v", tc.Coverage, tc)
	}

	// After drain the backlog gauge must read zero.
	snap := getMetrics(t, ts.URL)
	if got := snap.Gauges["audit_backlog"]; got != 0 {
		t.Fatalf("audit_backlog = %d after drain", got)
	}
	if got := snap.Counters[Key("audits_total", "technique", onlineTech)]; got != e2eTrials {
		t.Fatalf("audits_total = %d", got)
	}
}

// comparable strips the fields that legitimately vary run to run
// (latency), keeping everything a client could act on.
func comparable(r QueryResponse) string {
	r.LatencyMS = 0
	b, _ := json.Marshal(r)
	return string(b)
}

// Auditing must be invisible to the foreground: with single-worker
// deterministic execution, every response with auditing at 100% is
// bit-identical to the response with auditing disabled.
func TestAuditForegroundBitIdentical(t *testing.T) {
	queries := make([]QueryRequest, 0, 60)
	for i := 0; i < 50; i++ {
		queries = append(queries, QueryRequest{
			SQL: windowSQL(i), Mode: "online", RelError: 0.5, Confidence: 0.95, Workers: 1,
		})
	}
	queries = append(queries,
		QueryRequest{SQL: "SELECT ev_group, SUM(ev_value) FROM events GROUP BY ev_group", Mode: "online", RelError: 0.5, Confidence: 0.95, Workers: 1},
		QueryRequest{SQL: "SELECT COUNT(*) FROM events", Mode: "exact", Workers: 1},
	)

	run := func(fraction float64) []string {
		_, db := auditEvents(t)
		srv := New(db, Config{Workers: 2, AuditFraction: fraction, AuditQueueCap: 128})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Shutdown(context.Background())
		var out []string
		for i, q := range queries {
			resp, ok, bad := postQuery(t, ts.URL, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %d (fraction %v): %s", i, fraction, bad.Error)
			}
			out = append(out, comparable(ok))
		}
		if srv.Auditor() != nil {
			drainAuditor(t, srv)
		}
		return out
	}

	plain := run(0)
	audited := run(1)
	for i := range plain {
		if plain[i] != audited[i] {
			t.Fatalf("response %d differs with auditing on:\noff: %s\non:  %s",
				i, plain[i], audited[i])
		}
	}
}

// Auditing at 100% must not starve the foreground: the idle gate only
// grants audit capacity when no query is waiting and a slot is free, so
// foreground tail latency stays within noise of the audit-off baseline
// and nothing is shed.
func TestAuditDoesNotStarveForeground(t *testing.T) {
	const queries = 150
	run := func(fraction float64) (p99 time.Duration, srvOut *Server, closeFn func()) {
		_, db := auditEvents(t)
		srv := New(db, Config{
			Workers: 2, AuditFraction: fraction,
			AuditQueueCap: queries + 8, AuditWindow: queries + 8,
		})
		ts := httptest.NewServer(srv.Handler())
		lat := make([]time.Duration, 0, queries)
		for i := 0; i < queries; i++ {
			start := time.Now()
			resp, _, bad := postQuery(t, ts.URL, QueryRequest{
				SQL: windowSQL(i), Mode: "online", RelError: 0.5, Confidence: 0.95,
			})
			lat = append(lat, time.Since(start))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("foreground query %d shed or failed: %d %s", i, resp.StatusCode, bad.Error)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[queries*99/100], srv, func() {
			ts.Close()
			srv.Shutdown(context.Background())
		}
	}

	p99Off, _, closeOff := run(0)
	defer closeOff()
	p99On, srvOn, closeOn := run(1)
	defer closeOn()

	// The audit lane must actually have been working while the foreground
	// ran — otherwise this test proves nothing.
	drainAuditor(t, srvOn)
	if rep := srvOn.Auditor().Report(); rep.Audited == 0 {
		t.Fatalf("no audits executed: %+v", rep)
	}
	// Generous noise bound: an idle-gated background lane can at worst add
	// scheduler jitter, not queueing delay.
	limit := 10*p99Off + 100*time.Millisecond
	if p99On > limit {
		t.Fatalf("foreground p99 %v with auditing vs %v without (limit %v)", p99On, p99Off, limit)
	}
	if shed := srvOn.Metrics().Counter("queries_shed_total"); shed != 0 {
		t.Fatalf("auditing caused %d sheds", shed)
	}
}

// After a drift append, audit misses on synopsis-served answers must be
// attributed to sample staleness: the stale gauge fires for the table and
// the report carries a rebuild hint.
func TestAuditStalenessGaugeAfterDrift(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 11, Rows: 4000, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := aqp.Open(ev.Catalog)
	if err := db.BuildSynopsis("events", "ev_value"); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{Workers: 2, AuditFraction: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Drift: 3000 new rows land after the synopsis build. Range counts
	// move far beyond the histogram's slack, so every claimed CI misses.
	if err := ev.AppendShifted(3000, 1.0, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		lo := 5 + 5*i
		sql := fmt.Sprintf("SELECT COUNT(*) FROM events WHERE ev_value >= %d AND ev_value < %d",
			lo, lo+60)
		resp, ok, bad := postQuery(t, ts.URL, QueryRequest{SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %s", i, bad.Error)
		}
		if ok.Technique != "synopsis" {
			t.Fatalf("query %d routed to %s, want synopsis", i, ok.Technique)
		}
	}
	drainAuditor(t, srv)

	rep := getAudit(t, ts.URL)
	if rep.Audited != 6 {
		t.Fatalf("audited %d of 6", rep.Audited)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].Table != "events" {
		t.Fatalf("tables: %+v", rep.Tables)
	}
	tb := rep.Tables[0]
	if !tb.Stale {
		t.Fatalf("staleness not detected: %+v (techniques %+v)", tb, rep.Techniques)
	}
	if tb.MaxRowsAppended != 3000 {
		t.Fatalf("rows appended %d, want 3000", tb.MaxRowsAppended)
	}
	if tb.Hint == "" {
		t.Fatal("stale table carries no rebuild hint")
	}

	snap := getMetrics(t, ts.URL)
	if got := snap.Gauges[Key("sample_stale", "table", "events")]; got != 1 {
		t.Fatalf("sample_stale gauge = %d, want 1 (gauges %+v)", got, snap.Gauges)
	}

	// The staleness gauge must also survive the Prometheus exposition
	// path with its labeled-gauge family grouping.
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !bytes.Contains(buf.Bytes(), []byte(`sample_stale{table="events"} 1`)) {
		t.Fatalf("prom exposition missing stale gauge:\n%s", buf.String())
	}
}
