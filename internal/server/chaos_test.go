package server

// Chaos suite: replay seeded fault schedules against a live server and
// assert the containment invariants — the process survives every
// injected panic, failures surface as typed errors or degraded:true
// estimates with well-formed CIs, and answers are bit-identical to
// baseline once injection is off. The fault registry is process-global,
// so these tests never run in parallel and always disarm on cleanup.

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// chaosServer builds a deterministic server whose degradation ladder is
// fully provisioned: offline samples and synopses exist for table t.
func chaosServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	db := buildDB(t, 20000)
	if err := db.BuildOfflineSamples("t", [][]string{{"g"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildSynopsis("t", "x"); err != nil {
		t.Fatal(err)
	}
	return New(db, cfg)
}

// chaosQueries crosses every mode with a few query shapes.
var chaosQueries = []QueryRequest{
	{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "exact"},
	{SQL: "SELECT g, AVG(x), COUNT(*) FROM t GROUP BY g ORDER BY g", Mode: "exact"},
	{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "online", RelError: 0.5, Confidence: 0.95},
	{SQL: "SELECT g, AVG(x), COUNT(*) FROM t GROUP BY g ORDER BY g", Mode: "offline", RelError: 0.5, Confidence: 0.95},
	{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "ola", RelError: 0.5, Confidence: 0.95},
	{SQL: "SELECT COUNT(*) FROM t WHERE x >= 0", Mode: "auto", RelError: 0.5, Confidence: 0.95},
}

// checkChaosResponse asserts the per-response invariants that must hold
// under injection: an allowed status, degradation flagged whenever a
// substitute technique answered, and well-formed intervals.
func checkChaosResponse(t *testing.T, req QueryRequest, status int, ok QueryResponse) {
	t.Helper()
	switch status {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestTimeout,
		http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
	default:
		t.Fatalf("%s %q: unexpected status %d", req.Mode, req.SQL, status)
	}
	if status != http.StatusOK {
		return
	}
	if ok.DegradedFrom != "" && !ok.Degraded {
		t.Fatalf("%s %q: degraded_from=%q but degraded flag unset", req.Mode, req.SQL, ok.DegradedFrom)
	}
	// A forced mode that answers with a technique outside its own
	// repertoire (its technique or the engine's exact fallback) must be
	// flagged as degraded.
	native := map[string][]string{
		"exact":   {"exact"},
		"online":  {"online-sampling", "exact"},
		"offline": {"offline-samples", "exact"},
		"ola":     {"online-aggregation", "exact"},
	}
	if want, forced := native[req.Mode]; forced && !ok.Degraded {
		found := false
		for _, tech := range want {
			if ok.Technique == tech {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s %q: technique %s substituted without degraded flag", req.Mode, req.SQL, ok.Technique)
		}
	}
	for _, row := range ok.Items {
		for _, it := range row {
			if !it.HasCI {
				continue
			}
			// NaN fails both comparisons.
			if !(it.CILo <= it.CIHi) {
				t.Fatalf("%s %q: inverted CI [%g, %g]", req.Mode, req.SQL, it.CILo, it.CIHi)
			}
			if !(it.Confidence > 0 && it.Confidence <= 1) {
				t.Fatalf("%s %q: bad confidence %g", req.Mode, req.SQL, it.Confidence)
			}
		}
	}
}

// TestChaosWildcardPanicSurvival arms a panic rule on every registered
// injection point and replays the query mix many times: the server must
// answer every request with a typed error or a properly flagged
// degraded estimate, and never die.
func TestChaosWildcardPanicSurvival(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	srv := chaosServer(t, Config{DegradeBudget: 2 * time.Second, BreakerThreshold: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 7, Rules: []fault.Rule{
		{Point: "*", Kind: fault.KindPanic, P: 0.3},
	}})
	for round := 0; round < 8; round++ {
		for _, req := range chaosQueries {
			resp, ok, _ := postQuery(t, ts.URL, req)
			resp.Body.Close()
			checkChaosResponse(t, req, resp.StatusCode, ok)
		}
	}
	var fires int64
	for _, st := range fault.Status() {
		fires += st.Fires
	}
	if fires == 0 {
		t.Fatal("no faults fired: injection points not reached")
	}
	// The server containment scope must have converted panics into typed
	// errors rather than letting them unwind the process (reaching this
	// line at all proves survival; the counter proves the path was hot).
	snap := getMetrics(t, ts.URL)
	var panics int64
	for k, v := range snap.Counters {
		if len(k) >= len("query_panics_total") && k[:len("query_panics_total")] == "query_panics_total" {
			panics += v
		}
	}
	if panics == 0 {
		t.Error("query_panics_total is zero after a panic-only chaos schedule")
	}
}

// TestChaosMixedFaultSchedule replays errors and latency (not just
// panics) with a different seed, covering the KindError and KindLatency
// paths end to end.
func TestChaosMixedFaultSchedule(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	srv := chaosServer(t, Config{DegradeBudget: 2 * time.Second, BreakerThreshold: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 99, Rules: []fault.Rule{
		{Point: "core.online", Kind: fault.KindError, P: 0.5},
		{Point: "core.exact", Kind: fault.KindPanic, P: 0.5},
		{Point: "exec.morsel", Kind: fault.KindLatency, P: 0.05, Latency: time.Millisecond},
	}})
	for round := 0; round < 6; round++ {
		for _, req := range chaosQueries {
			resp, ok, _ := postQuery(t, ts.URL, req)
			resp.Body.Close()
			checkChaosResponse(t, req, resp.StatusCode, ok)
		}
	}
}

// TestChaosBaselineBitIdentical asserts the zero-cost-when-off
// contract: responses recorded before a chaos phase are bit-identical
// to responses from a fresh server after the schedule is uninstalled —
// injection leaves no residue in results.
func TestChaosBaselineBitIdentical(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	run := func() []QueryResponse {
		srv := chaosServer(t, Config{DegradeBudget: 2 * time.Second})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var out []QueryResponse
		for _, req := range chaosQueries {
			resp, ok, bad := postQuery(t, ts.URL, req)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("baseline %s %q: status %d: %s", req.Mode, req.SQL, resp.StatusCode, bad.Error)
			}
			if ok.Degraded {
				t.Fatalf("baseline %s %q: degraded with injection off", req.Mode, req.SQL)
			}
			ok.LatencyMS = 0
			ok.Messages = nil
			out = append(out, ok)
		}
		return out
	}

	before := run()

	fault.Install(fault.Schedule{Seed: 3, Rules: []fault.Rule{
		{Point: "*", Kind: fault.KindPanic, P: 0.4},
	}})
	srv := chaosServer(t, Config{DegradeBudget: time.Second, BreakerThreshold: 8})
	ts := httptest.NewServer(srv.Handler())
	for _, req := range chaosQueries {
		resp, ok, _ := postQuery(t, ts.URL, req)
		resp.Body.Close()
		checkChaosResponse(t, req, resp.StatusCode, ok)
	}
	ts.Close()
	fault.Uninstall()

	after := run()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("baseline drift: injection-off responses differ before and after a chaos phase")
	}
}

// TestDegradeLadderOnPanic forces the exact engine to panic on every
// call: the ladder must substitute a cheaper technique and return 200
// with degraded:true, degraded_from=exact, and a CI from the
// substitute, while the panic and degradation counters advance.
func TestDegradeLadderOnPanic(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	srv := chaosServer(t, Config{DegradeBudget: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "core.exact", Kind: fault.KindPanic, P: 1},
	}})
	req := QueryRequest{SQL: "SELECT SUM(x) FROM t WHERE x < 50", Mode: "exact", RelError: 0.5, Confidence: 0.95}
	resp, ok, bad := postQuery(t, ts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200 via degradation ladder", resp.StatusCode, bad.Error)
	}
	if !ok.Degraded || ok.DegradedFrom != "exact" {
		t.Fatalf("degraded=%v degraded_from=%q, want degraded from exact", ok.Degraded, ok.DegradedFrom)
	}
	if ok.Technique == string(core.TechniqueExact) {
		t.Fatalf("technique = %s, want a substitute", ok.Technique)
	}
	hasCI := false
	for _, row := range ok.Items {
		for _, it := range row {
			if it.HasCI && it.CILo <= it.CIHi && it.Confidence > 0 {
				hasCI = true
			}
		}
	}
	if !hasCI {
		t.Error("degraded answer carries no confidence interval")
	}
	snap := getMetrics(t, ts.URL)
	if snap.Counters[Key("query_panics_total", "engine", "exact")] == 0 {
		t.Error("query_panics_total{engine=exact} not incremented")
	}
	found := false
	for _, rung := range []string{"ola", "offline", "synopsis"} {
		if snap.Counters[Key("queries_degraded_total", "to", rung)] > 0 {
			found = true
		}
	}
	if !found {
		t.Error("queries_degraded_total not incremented for any rung")
	}
}

// TestDegradeDisabledPerRequest asserts no_degrade:true restores the
// fail-fast contract: the same forced panic surfaces as a typed 500.
func TestDegradeDisabledPerRequest(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	srv := chaosServer(t, Config{DegradeBudget: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "core.exact", Kind: fault.KindPanic, P: 1},
	}})
	req := QueryRequest{SQL: "SELECT SUM(x) FROM t", Mode: "exact", NoDegrade: true}
	resp, _, bad := postQuery(t, ts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 with no_degrade", resp.StatusCode)
	}
	if !strings.Contains(bad.Error, core.ErrQueryPanic.Error()) {
		t.Fatalf("error body %q does not carry the typed panic error", bad.Error)
	}
}

// TestDegradeBreakerTripsAndRecovers walks an engine breaker through
// its full cycle over HTTP: consecutive panics trip it (engine_tripped
// gauge set, fast-fail 503 without touching the engine), and after the
// cooldown a half-open probe with injection disarmed closes it again.
func TestDegradeBreakerTripsAndRecovers(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	srv := chaosServer(t, Config{
		DegradeBudget:    -1, // ladder off: breaker behavior in isolation
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fault.Install(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: "core.exact", Kind: fault.KindPanic, P: 1},
	}})
	req := QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"}
	for i := 0; i < 2; i++ {
		resp, _, _ := postQuery(t, ts.URL, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic %d: status = %d, want 500", i, resp.StatusCode)
		}
	}
	// Third request: breaker open, short-circuited before the engine.
	hitsBefore := pointHits(t, "core.exact")
	resp, _, bad := postQuery(t, ts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: status = %d (%s), want 503", resp.StatusCode, bad.Error)
	}
	if got := pointHits(t, "core.exact"); got != hitsBefore {
		t.Fatalf("engine reached while breaker open: hits %d -> %d", hitsBefore, got)
	}
	snap := getMetrics(t, ts.URL)
	if snap.Gauges[Key("engine_tripped", "engine", "exact")] != 1 {
		t.Error("engine_tripped{engine=exact} gauge not set while open")
	}
	if snap.Counters[Key("breaker_trips_total", "engine", "exact")] == 0 {
		t.Error("breaker_trips_total{engine=exact} not incremented")
	}

	// Heal the engine and wait out the cooldown: the half-open probe
	// must succeed and close the breaker.
	fault.Uninstall()
	time.Sleep(60 * time.Millisecond)
	resp, ok, bad := postQuery(t, ts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: status = %d (%s), want 200", resp.StatusCode, bad.Error)
	}
	if ok.Degraded {
		t.Error("healed engine answered degraded")
	}
	snap = getMetrics(t, ts.URL)
	if snap.Gauges[Key("engine_tripped", "engine", "exact")] != 0 {
		t.Error("engine_tripped{engine=exact} gauge still set after recovery")
	}
}

// pointHits reads one injection point's hit counter from the registry.
func pointHits(t *testing.T, name string) int64 {
	t.Helper()
	for _, st := range fault.Status() {
		if st.Name == name {
			return st.Hits
		}
	}
	t.Fatalf("injection point %s not registered", name)
	return 0
}
