package server

import (
	"strings"
	"testing"
)

// unescapeLabelValue is a minimal Prometheus text-format label parser:
// the reverse of EscapeLabelValue, per the exposition-format spec (only
// \\, \", and \n are defined escapes).
func unescapeLabelValue(t *testing.T, v string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			t.Fatalf("dangling backslash in %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("undefined escape \\%c in %q — prometheus parsers read this literally", v[i], v)
		}
	}
	return b.String()
}

// parseKey splits name{label="value"} with the in-test parser, verifying
// the quoted value uses only spec-defined escapes.
func parseKey(t *testing.T, key string) (name, label, value string) {
	t.Helper()
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "\"}") {
		t.Fatalf("malformed key %q", key)
	}
	name = key[:open]
	body := key[open+1 : len(key)-2] // strip {  and  "}
	eq := strings.Index(body, "=\"")
	if eq < 0 {
		t.Fatalf("malformed label body in %q", key)
	}
	return name, body[:eq], unescapeLabelValue(t, body[eq+2:])
}

// Label values must survive a round trip through Key() and a
// spec-faithful parser — including backslashes, quotes, newlines, and
// non-ASCII, all of which appear in real SQL-derived labels.
func TestKeyLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		"exact",
		`path\to\sample`,
		`quoted "name"`,
		"line1\nline2",
		`mix\"of \\ everything` + "\n" + `"end"`,
		"unicode: héllo wörld — 日本語",
		"tab\tand\rcr stay raw",
		"",
	}
	for _, v := range values {
		key := Key("queries_total", "technique", v)
		name, label, got := parseKey(t, key)
		if name != "queries_total" || label != "technique" {
			t.Fatalf("key structure: %q", key)
		}
		if got != v {
			t.Fatalf("round trip: %q -> %q -> %q", v, key, got)
		}
	}
}

// The old %q-based escaping hex-escaped non-ASCII; the spec-compliant
// form must keep raw UTF-8 and raw tabs.
func TestKeyKeepsRawUTF8(t *testing.T) {
	key := Key("m", "l", "héllo\tworld")
	if strings.Contains(key, `\x`) || strings.Contains(key, `\u`) || strings.Contains(key, `\t`) {
		t.Fatalf("over-escaped key: %q", key)
	}
	if !strings.Contains(key, "héllo\tworld") {
		t.Fatalf("utf-8/tab not raw in key: %q", key)
	}
}

// Labeled gauges must share one # TYPE line per family in the exposition
// output, like counters and histograms always did.
func TestPrometheusGaugeFamilyGrouping(t *testing.T) {
	m := NewMetrics()
	var sb strings.Builder
	m.WritePrometheus(&sb, map[string]int64{
		Key("sample_stale", "table", "events"): 1,
		Key("sample_stale", "table", "stars"):  0,
		"audit_backlog":                        3,
	}, nil, nil)
	out := sb.String()
	if n := strings.Count(out, "# TYPE sample_stale gauge"); n != 1 {
		t.Fatalf("sample_stale family declared %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`sample_stale{table="events"} 1`,
		`sample_stale{table="stars"} 0`,
		"# TYPE audit_backlog gauge",
		"audit_backlog 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// TYPE must precede its series.
	if strings.Index(out, "# TYPE sample_stale gauge") > strings.Index(out, `sample_stale{table="events"}`) {
		t.Fatalf("TYPE line after series:\n%s", out)
	}
}
