package server

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo reports the server's build identity without requiring git:
// the Go toolchain version and the main module path/version as recorded
// by the build system ("(devel)" for local builds).
func BuildInfo() map[string]string {
	info := map[string]string{
		"go_version": runtime.Version(),
		"module":     "repro",
		"version":    "(devel)",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			info["module"] = bi.Main.Path
		}
		if bi.Main.Version != "" {
			info["version"] = bi.Main.Version
		}
	}
	return info
}
