package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/insight"
	"repro/internal/telemetry"
)

// initInsight wires the workload-insight registry. It rides with
// telemetry (so the telemetry-overhead A/B gate covers its cost) and is
// bounded by Config.WorkloadCap; a negative cap opts out.
func (s *Server) initInsight(cfg Config) {
	if cfg.WorkloadCap < 0 {
		return
	}
	s.insight = insight.New(insight.Config{
		Cap:     cfg.WorkloadCap,
		Window:  cfg.WorkloadWindow,
		OnEvent: s.onInsightEvent,
	})
}

// WorkloadRegistry returns the workload-insight registry (nil when
// telemetry is off or WorkloadCap is negative).
func (s *Server) WorkloadRegistry() *insight.Registry { return s.insight }

// onInsightEvent folds sentinel transitions and evictions into the
// metrics registry and the flight recorder. A tripped sentinel is the
// per-shape analogue of an SLO burn: the flight event puts it on the
// same postmortem timeline as faults, breaker trips, and shard loss.
func (s *Server) onInsightEvent(ev insight.Event) {
	switch ev.Kind {
	case insight.EventRegression:
		s.met.Inc(Key("workload_regressions_total", "signal", ev.Signal))
		s.cfg.Logger.Warn("workload regression",
			"fingerprint", ev.Fingerprint, "signal", ev.Signal,
			"technique", ev.Technique,
			"baseline", ev.Baseline, "current", ev.Current,
			"template", ev.Template)
		s.flight.AddEvent(telemetry.Event{
			Kind: "workload_regression", Name: ev.Fingerprint,
			Detail: insightDetail(ev), Shard: -1,
		})
	case insight.EventRecovered:
		s.met.Inc(Key("workload_recoveries_total", "signal", ev.Signal))
		s.flight.AddEvent(telemetry.Event{
			Kind: "workload_recovered", Name: ev.Fingerprint,
			Detail: insightDetail(ev), Shard: -1,
		})
	case insight.EventEvicted:
		s.met.Inc("workload_evictions_total")
	}
}

func insightDetail(ev insight.Event) string {
	sig := ev.Signal
	if ev.Technique != "" {
		sig += "/" + ev.Technique
	}
	return fmt.Sprintf("%s: baseline %.4g, current %.4g", sig, ev.Baseline, ev.Current)
}

// WorkloadResponse is the body of GET /workload.
type WorkloadResponse struct {
	Enabled bool            `json:"enabled"`
	Summary insight.Summary `json:"summary"`
	// By is the resolved ranking: traffic, latency, or regressions.
	By  string                 `json:"by"`
	Top []insight.CardSnapshot `json:"top"`
}

// handleWorkload serves the per-fingerprint scorecards, top-N under
// ?by=traffic|latency|regressions (default traffic), ?n= (default 20).
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.insight == nil {
		writeError(w, http.StatusNotFound, "workload insight disabled (start aqpd with -telemetry)")
		return
	}
	q := r.URL.Query()
	n := 20
	if v := q.Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i <= 0 {
			writeError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		n = i
	}
	by := insight.ByTraffic
	switch v := q.Get("by"); v {
	case "", insight.ByTraffic:
	case insight.ByLatency, insight.ByRegressions:
		by = v
	default:
		writeError(w, http.StatusBadRequest, "bad by %q (want traffic, latency, or regressions)", v)
		return
	}
	writeJSON(w, http.StatusOK, WorkloadResponse{
		Enabled: true,
		Summary: s.insight.Summary(),
		By:      by,
		Top:     s.insight.Top(n, by),
	})
}
