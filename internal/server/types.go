package server

import (
	"fmt"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// SQL is the query text; it may carry WITH ERROR / CONFIDENCE.
	SQL string `json:"sql"`
	// Mode picks the engine: "auto" (advisor, default), "exact",
	// "online", "offline", "ola", "as-written".
	Mode string `json:"mode,omitempty"`
	// RelError / Confidence form the accuracy contract when the SQL has
	// no WITH ERROR clause (both required together).
	RelError   float64 `json:"rel_error,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// TimeoutMS bounds execution; 0 uses the server default. It is
	// clamped to the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers requests a morsel-parallel worker count for this query;
	// 0 uses the server's per-query cap, larger values are clamped to it.
	Workers int `json:"workers,omitempty"`
	// Trace embeds the per-query span profile in the response. Tracing
	// is observational only: rows are bit-identical either way.
	Trace bool `json:"trace,omitempty"`
	// NoDegrade disables the graceful-degradation ladder for this query:
	// on engine failure or deadline the caller gets the typed error
	// instead of a best-effort estimate from a cheaper technique.
	NoDegrade bool `json:"no_degrade,omitempty"`
	// Contract requests a-priori two-stage contract execution: a pilot
	// sizes the stage-two sampling fraction that makes the realized CI
	// meet the error spec, and the response carries a contract block with
	// the met/missed/infeasible verdict. Valid with modes "auto" (online
	// engine), "online", "ola", and "offline".
	Contract bool `json:"contract,omitempty"`
}

// ItemJSON annotates one result cell.
type ItemJSON struct {
	Name         string  `json:"name"`
	IsAggregate  bool    `json:"is_aggregate"`
	HasCI        bool    `json:"has_ci"`
	CILo         float64 `json:"ci_lo,omitempty"`
	CIHi         float64 `json:"ci_hi,omitempty"`
	Confidence   float64 `json:"confidence,omitempty"`
	RelHalfWidth float64 `json:"rel_half_width,omitempty"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	Columns []string     `json:"columns"`
	Rows    [][]any      `json:"rows"`
	Items   [][]ItemJSON `json:"items,omitempty"`

	Technique string  `json:"technique"`
	Guarantee string  `json:"guarantee"`
	RelError  float64 `json:"rel_error,omitempty"`
	ConfSpec  float64 `json:"confidence,omitempty"`

	// Partial marks a deadline-truncated online-aggregation answer: the
	// best progressive estimate available when time ran out.
	Partial bool `json:"partial"`
	// Degraded marks a best-effort answer that is not what the request
	// asked for: the requested engine failed or timed out and the
	// degradation ladder substituted a cheaper technique (or kept a
	// partial estimate after a mid-query fault). The CI fields still
	// describe exactly the estimate returned.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedFrom names the originally requested mode when Degraded.
	DegradedFrom   string  `json:"degraded_from,omitempty"`
	SpecSatisfied  bool    `json:"spec_satisfied"`
	LatencyMS      float64 `json:"latency_ms"`
	RowsScanned    int64   `json:"rows_scanned"`
	SampleFraction float64 `json:"sample_fraction"`
	// Workers is the morsel-parallel worker count the query ran with.
	Workers int `json:"workers,omitempty"`
	// Fingerprint is the query's shape hash (literal-normalized
	// canonical SQL + query-column-set) — the key into GET /workload's
	// scorecards and the flight recorder's fingerprint fields. Purely
	// derived from the SQL text, so it is identical whether or not
	// telemetry is on.
	Fingerprint string   `json:"fingerprint,omitempty"`
	Messages    []string `json:"messages,omitempty"`
	// TraceID is the query's 128-bit trace identifier (lowercase hex),
	// present whenever the query was traced (request "trace": true, or
	// server telemetry on). An inbound traceparent header's trace ID is
	// adopted, so callers can correlate.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the span profile tree, present when the request set
	// "trace": true.
	Trace *trace.Profile `json:"trace,omitempty"`
	// Shards summarizes scatter-gather execution over a sharded table.
	// Absent entirely for unsharded queries, so their JSON is unchanged.
	Shards *ShardsJSON `json:"shards,omitempty"`
	// Contract is the a-priori contract summary (sizing, cost, verdict).
	// Absent entirely for non-contract queries, so their JSON is
	// unchanged.
	Contract *contract.Summary `json:"contract,omitempty"`
}

// ShardsJSON is the wire form of a sharded execution summary.
type ShardsJSON struct {
	Table        string  `json:"table"`
	Count        int     `json:"count"`
	Key          string  `json:"key"`
	RowsPerShard []int   `json:"rows_per_shard,omitempty"`
	Degraded     []int   `json:"degraded,omitempty"`
	Pruned       []int   `json:"pruned,omitempty"`
	Extrapolated bool    `json:"extrapolated,omitempty"`
	Coverage     float64 `json:"coverage"`
}

// ErrorResponse is the body of any non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// TableInfo describes one catalog table for GET /tables.
type TableInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Version uint64       `json:"version"`
	Columns []ColumnInfo `json:"columns"`
	Samples []SampleInfo `json:"samples,omitempty"`
}

// ColumnInfo describes one column.
type ColumnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// SampleInfo describes one stored offline sample.
type SampleInfo struct {
	Name  string   `json:"name"`
	QCS   []string `json:"qcs,omitempty"`
	Rows  int      `json:"rows"`
	Rate  float64  `json:"rate,omitempty"`
	Cap   int      `json:"cap,omitempty"`
	Fresh bool     `json:"fresh"`
}

// BuildSamplesRequest is the body of POST /samples/build.
type BuildSamplesRequest struct {
	Table string `json:"table"`
	// QCS lists the query column sets to stratify on; an empty list
	// builds the default ladder (uniform sample only).
	QCS [][]string `json:"qcs,omitempty"`
	// Profile lists queries to run for error-profile certification.
	Profile []string `json:"profile,omitempty"`
}

// BuildSamplesResponse reports what POST /samples/build produced.
type BuildSamplesResponse struct {
	Table   string       `json:"table"`
	Samples []SampleInfo `json:"samples"`
}

// encodeValue converts a storage value to its JSON-friendly form: nil
// for NULL, otherwise the native Go scalar.
func encodeValue(v storage.Value) any {
	if v.IsNull() {
		return nil
	}
	switch v.Typ {
	case storage.TypeInt64:
		return v.I
	case storage.TypeFloat64:
		return v.F
	case storage.TypeString:
		return v.S
	case storage.TypeBool:
		return v.B
	default:
		return v.String()
	}
}

// encodeResult converts an annotated engine result to the wire form.
func encodeResult(res *core.Result) *QueryResponse {
	out := &QueryResponse{
		Columns:        res.Columns,
		Rows:           make([][]any, len(res.Rows)),
		Technique:      string(res.Technique),
		Guarantee:      res.Guarantee.String(),
		RelError:       res.Spec.RelError,
		ConfSpec:       res.Spec.Confidence,
		Partial:        res.Diagnostics.Partial,
		Degraded:       res.Diagnostics.Degraded,
		SpecSatisfied:  res.Diagnostics.SpecSatisfied,
		LatencyMS:      float64(res.Diagnostics.Latency.Microseconds()) / 1e3,
		RowsScanned:    res.Diagnostics.Counters.RowsScanned,
		SampleFraction: res.Diagnostics.SampleFraction,
		Workers:        res.Diagnostics.Workers,
		Fingerprint:    res.Diagnostics.Fingerprint,
		Messages:       res.Diagnostics.Messages,
	}
	for i, row := range res.Rows {
		enc := make([]any, len(row))
		for j, v := range row {
			enc[j] = encodeValue(v)
		}
		out.Rows[i] = enc
	}
	if sh := res.Diagnostics.Shards; sh != nil {
		out.Shards = &ShardsJSON{
			Table:        sh.Table,
			Count:        sh.Count,
			Key:          sh.Key,
			RowsPerShard: sh.RowsPerShard,
			Degraded:     sh.Degraded,
			Pruned:       sh.Pruned,
			Extrapolated: sh.Extrapolated,
			Coverage:     sh.CoverageFraction,
		}
	}
	out.Contract = res.Diagnostics.Contract
	if len(res.Items) > 0 {
		out.Items = make([][]ItemJSON, len(res.Items))
		for i, items := range res.Items {
			enc := make([]ItemJSON, len(items))
			for j, it := range items {
				enc[j] = ItemJSON{
					Name:        it.Name,
					IsAggregate: it.IsAggregate,
					HasCI:       it.HasCI,
				}
				if it.HasCI {
					enc[j].CILo = it.CI.Lo
					enc[j].CIHi = it.CI.Hi
					enc[j].Confidence = it.CI.Confidence
					enc[j].RelHalfWidth = it.RelHalfWidth
				}
			}
			out.Items[i] = enc
		}
	}
	return out
}

// validMode reports whether the request mode is recognized.
func validMode(m string) error {
	switch m {
	case "", "auto", "exact", "online", "offline", "ola", "synopsis", "as-written":
		return nil
	}
	return fmt.Errorf("unknown mode %q (want auto, exact, online, offline, ola, synopsis, or as-written)", m)
}
