package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	aqp "repro"
)

// TestShardedQueryJSON: a query over a sharded table carries the shards
// summary on the wire, /shards reports layout and health, and per-shard
// outcome counters land in /metrics.
func TestShardedQueryJSON(t *testing.T) {
	db := buildDB(t, 20_000)
	if _, err := db.ShardTable("t", aqp.ShardKey{Column: "id", Kind: aqp.ShardHash, Count: 4}); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ok, bad := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) AS c FROM t", Mode: "exact"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, bad.Error)
	}
	if ok.Shards == nil {
		t.Fatal("sharded query response has no shards summary")
	}
	if ok.Shards.Table != "t" || ok.Shards.Count != 4 || ok.Shards.Coverage != 1 {
		t.Fatalf("shards summary = %+v", ok.Shards)
	}
	if len(ok.Shards.RowsPerShard) != 4 {
		t.Fatalf("rows_per_shard = %v", ok.Shards.RowsPerShard)
	}
	if got := int64(ok.Rows[0][0].(float64)); got != 20_000 {
		t.Fatalf("sharded exact COUNT(*) = %d", got)
	}

	// GET /shards: layout plus live per-shard health.
	hr, err := http.Get(ts.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var groups []ShardGroupStatus
	if err := json.NewDecoder(hr.Body).Decode(&groups); err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Table != "t" || groups[0].Count != 4 {
		t.Fatalf("/shards = %+v", groups)
	}
	if len(groups[0].Health) != 4 {
		t.Fatalf("health entries = %d", len(groups[0].Health))
	}
	total := 0
	for _, h := range groups[0].Health {
		if h.Open {
			t.Fatalf("healthy shard %d reports open breaker", h.ID)
		}
		total += h.Rows
	}
	if total != 20_000 {
		t.Fatalf("/shards rows sum to %d", total)
	}

	// Per-shard outcome counters.
	snap := getMetrics(t, ts.URL)
	hits := 0
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "shard_exec_total{") && strings.Contains(k, `outcome="ok"`) && v > 0 {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("expected 4 ok shard counters, found %d in %v", hits, snap.Counters)
	}
}

// TestUnshardedResponseHasNoShardsKey: with no sharded tables the wire
// JSON must not mention shards at all — byte-compatible with the
// pre-sharding protocol.
func TestUnshardedResponseHasNoShardsKey(t *testing.T) {
	db := buildDB(t, 2_000)
	srv := New(db, Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT COUNT(*) AS c FROM t", Mode: "exact"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	if bytes.Contains(raw, []byte(`"shards"`)) {
		t.Fatalf("unsharded response leaked a shards field: %s", raw)
	}

	// The /shards endpoint is an empty list, not an error.
	hr, err := http.Get(ts.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var groups []ShardGroupStatus
	if err := json.NewDecoder(hr.Body).Decode(&groups); err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("/shards with no sharded tables = %+v", groups)
	}
}
