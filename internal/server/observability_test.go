package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounterSumPrefixGuard(t *testing.T) {
	m := NewMetrics()
	m.Add(Key("queries_total", "technique", "exact"), 3)
	m.Add(Key("queries_total", "technique", "online"), 4)
	m.Add("queries_total_errors", 100) // shared name prefix, different family
	m.Add("queries_totally_unrelated", 100)

	if got := m.CounterSum("queries_total"); got != 7 {
		t.Fatalf("CounterSum(queries_total) = %d, want 7 (must not absorb queries_total_errors)", got)
	}
	// An unlabeled counter matches its own family exactly.
	m.Add("rows_scanned_total", 42)
	if got := m.CounterSum("rows_scanned_total"); got != 42 {
		t.Fatalf("CounterSum(rows_scanned_total) = %d, want 42", got)
	}
}

func TestHistogramPerKeyBounds(t *testing.T) {
	m := NewMetrics()
	m.ObserveWith("w", 0.003, errorWidthBuckets)
	m.ObserveWith("w", 0.9, errorWidthBuckets)
	m.Observe("lat", 3) // default latency bounds

	snap := m.Snapshot(nil)
	w := snap.Histograms["w"]
	if w.Count != 2 {
		t.Fatalf("w count = %d", w.Count)
	}
	// 0.003 lands in le=0.005 with error-width bounds; with the latency
	// bounds it would land in le=1.
	if w.Buckets["le=0.005"] != 1 || w.Buckets["le=1"] != 1 {
		t.Fatalf("w buckets = %v, want le=0.005:1 le=1:1", w.Buckets)
	}
	lat := snap.Histograms["lat"]
	if lat.Buckets["le=5"] != 1 {
		t.Fatalf("lat buckets = %v, want le=5:1", lat.Buckets)
	}
}

// promSeries is one parsed exposition line: name, labels, value.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a minimal Prometheus text-format 0.0.4 parser: it returns
// the TYPE declarations, the HELP texts, and every sample line, failing
// the test on any line it cannot parse.
func parseProm(t *testing.T, text string) (types, helps map[string]string, series []promSeries) {
	t.Helper()
	types = make(map[string]string)
	helps = make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			fam, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("bad HELP line: %q", line)
			}
			helps[fam] = help
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line: %q", line)
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSeries{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(id, '{'); i >= 0 {
			s.name = id[:i]
			body := strings.TrimSuffix(id[i+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				v, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("bad label value %q in %q: %v", pair, line, err)
				}
				s.labels[pair[:eq]] = v
			}
		} else {
			s.name = id
		}
		series = append(series, s)
	}
	return types, helps, series
}

func TestPrometheusExposition(t *testing.T) {
	// Above the online engine's MinTableRows threshold so approximate
	// queries actually sample (and emit CI-width telemetry).
	db := buildDB(t, 60000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%"})
	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT AVG(x) FROM t", Mode: "online"})

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	types, helps, series := parseProm(t, string(body))

	// Every declared family carries a HELP line, and the registered
	// families carry their curated sentence rather than the fallback.
	for fam := range types {
		if helps[fam] == "" {
			t.Fatalf("family %q declared without a HELP line", fam)
		}
	}
	for _, fam := range []string{"queries_total", "query_latency_ms", "query_latency_seconds", "uptime_seconds"} {
		if strings.HasPrefix(helps[fam], "aqpd metric") {
			t.Fatalf("family %q has fallback HELP %q, want a curated sentence", fam, helps[fam])
		}
	}

	// Millisecond histogram families get a unit-correct _seconds copy:
	// same per-series counts, bounds and sums scaled by 1e-3, original
	// name preserved.
	if types["query_latency_seconds"] != "histogram" {
		t.Fatalf("query_latency_seconds type = %q, want histogram", types["query_latency_seconds"])
	}
	var msSum, secSum, msCount, secCount float64
	for _, s := range series {
		switch s.name {
		case "query_latency_ms_sum":
			msSum += s.value
		case "query_latency_seconds_sum":
			secSum += s.value
		case "query_latency_ms_count":
			msCount += s.value
		case "query_latency_seconds_count":
			secCount += s.value
		}
	}
	if msCount == 0 || msCount != secCount {
		t.Fatalf("latency counts: ms=%v seconds=%v, want equal and nonzero", msCount, secCount)
	}
	if diff := msSum/1e3 - secSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("latency sums: ms=%v seconds=%v, want seconds = ms/1000", msSum, secSum)
	}

	if types["queries_total"] != "counter" {
		t.Fatalf("queries_total type = %q, want counter (types: %v)", types["queries_total"], types)
	}
	if types["query_latency_ms"] != "histogram" {
		t.Fatalf("query_latency_ms type = %q, want histogram", types["query_latency_ms"])
	}
	if types["query_ci_rel_width"] != "histogram" {
		t.Fatalf("query_ci_rel_width type = %q, want histogram (approx queries ran)", types["query_ci_rel_width"])
	}
	if types["uptime_seconds"] != "gauge" || types["aqpd_build_info"] != "gauge" {
		t.Fatalf("gauge types missing: %v", types)
	}

	// Histogram invariants: buckets cumulative and non-decreasing, the
	// +Inf bucket equals _count, and every series of a histogram family
	// is declared. Group by family+technique label.
	counts := map[string]float64{}  // family|technique -> _count
	infs := map[string]float64{}    // family|technique -> +Inf bucket
	lastCum := map[string]float64{} // running cumulative check
	for _, s := range series {
		tech := s.labels["technique"]
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			fam := strings.TrimSuffix(s.name, "_bucket")
			k := fam + "|" + tech
			if s.value < lastCum[k] {
				t.Fatalf("%s buckets not cumulative: %v after %v", k, s.value, lastCum[k])
			}
			lastCum[k] = s.value
			if s.labels["le"] == "+Inf" {
				infs[k] = s.value
			}
			if types[fam] != "histogram" {
				t.Fatalf("undeclared histogram family %q", fam)
			}
		case strings.HasSuffix(s.name, "_count"):
			counts[strings.TrimSuffix(s.name, "_count")+"|"+tech] = s.value
		}
	}
	if len(counts) == 0 {
		t.Fatal("no histogram _count series found")
	}
	for k, c := range counts {
		if infs[k] != c {
			t.Fatalf("%s: +Inf bucket %v != count %v", k, infs[k], c)
		}
	}

	// Build info carries the identity labels.
	found := false
	for _, s := range series {
		if s.name == "aqpd_build_info" {
			found = true
			if s.labels["go_version"] == "" || s.labels["module"] == "" {
				t.Fatalf("build info labels missing: %v", s.labels)
			}
		}
	}
	if !found {
		t.Fatal("aqpd_build_info series missing")
	}

	// The JSON format is unchanged by the prom path and carries Info.
	snap := getMetrics(t, ts.URL)
	if snap.Counters == nil || snap.Histograms == nil || snap.Gauges == nil {
		t.Fatalf("JSON snapshot shape changed: %+v", snap)
	}
	if snap.Info["go_version"] == "" {
		t.Fatalf("JSON snapshot missing build info: %v", snap.Info)
	}
	if _, ok := snap.Gauges["uptime_seconds"]; !ok {
		t.Fatal("uptime_seconds gauge missing")
	}
}

func TestTraceFlagEmbedsProfile(t *testing.T) {
	db := buildDB(t, 20000)
	srv := New(db, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{SQL: "SELECT SUM(x), COUNT(*) FROM t WHERE x > 10 GROUP BY g", Mode: "exact"}
	resp, plain, _ := postQuery(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced status = %d", resp.StatusCode)
	}
	if plain.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}

	req.Trace = true
	resp, traced, _ := postQuery(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced status = %d", resp.StatusCode)
	}
	if traced.Trace == nil {
		t.Fatal("trace requested but response has none")
	}
	if traced.Trace.Name != "query" {
		t.Fatalf("trace root = %q, want query", traced.Trace.Name)
	}
	if traced.Trace.Find("engine exact") == nil {
		t.Fatalf("no engine span in trace:\n%s", traced.Trace.String())
	}
	// The morsel path fuses the scan into the aggregate operator; the
	// aggregate span and its worker children must be present.
	if traced.Trace.Find("HashAggregate") == nil {
		t.Fatalf("no aggregate operator span in trace:\n%s", traced.Trace.String())
	}
	if traced.Trace.Find("worker 0") == nil {
		t.Fatalf("no worker span in trace:\n%s", traced.Trace.String())
	}
	// Tracing only observes: rows are bit-identical.
	if !reflect.DeepEqual(plain.Rows, traced.Rows) {
		t.Fatalf("traced rows differ from untraced:\n%v\n%v", plain.Rows, traced.Rows)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	db := buildDB(t, 5000)
	// SlowQuery of 1ns marks every completed query slow.
	srv := New(db, Config{Logger: logger, SlowQuery: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM t", Mode: "exact"})
	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM missing", Mode: "exact"})

	var slow, failed bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		switch rec["msg"] {
		case "slow query":
			slow = true
			if rec["level"] != "WARN" || rec["technique"] != "exact" || rec["sql"] == "" {
				t.Fatalf("slow query record malformed: %v", rec)
			}
		case "query failed":
			failed = true
			if rec["level"] != "WARN" || rec["err"] == "" {
				t.Fatalf("failure record malformed: %v", rec)
			}
		}
	}
	if !slow || !failed {
		t.Fatalf("missing log records (slow=%v failed=%v):\n%s", slow, failed, buf.String())
	}
}

func TestPprofGated(t *testing.T) {
	db := buildDB(t, 100)

	off := httptest.NewServer(New(db, Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}

	on := httptest.NewServer(New(db, Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d with EnablePprof", resp.StatusCode)
	}
}
