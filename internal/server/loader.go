package server

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	aqp "repro"
)

// LoadCSVFile loads a CSV file (header row required) into db under
// name, inferring the column types from the data: a column is BIGINT if
// every non-empty cell parses as an integer, DOUBLE if every cell
// parses as a number, BOOLEAN for true/false, VARCHAR otherwise.
func LoadCSVFile(db *aqp.DB, name, path string) (*aqp.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCSVReader(db, name, f)
}

// LoadCSVReader is LoadCSVFile over any reader. The whole input is read
// once to infer the schema, then appended via the typed loader.
func LoadCSVReader(db *aqp.DB, name string, r io.Reader) (*aqp.Table, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("server: read CSV for %s: %w", name, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("server: CSV for %s has no header row", name)
	}
	header := recs[0]
	rows := recs[1:]
	schema := make(aqp.Schema, len(header))
	for j, col := range header {
		schema[j] = aqp.ColumnDef{Name: strings.TrimSpace(col), Type: inferColumnType(rows, j)}
	}
	t, err := db.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	vals := make([][]aqp.Value, 0, len(rows))
	for i, rec := range rows {
		row := make([]aqp.Value, len(schema))
		for j := range schema {
			cell := ""
			if j < len(rec) {
				cell = strings.TrimSpace(rec[j])
			}
			v, err := parseCell(schema[j].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("server: %s line %d column %s: %w", name, i+2, schema[j].Name, err)
			}
			row[j] = v
		}
		vals = append(vals, row)
	}
	if err := t.AppendRows(vals); err != nil {
		return nil, err
	}
	return t, nil
}

func isNullCell(cell string) bool {
	return cell == "" || strings.EqualFold(cell, "null")
}

// inferColumnType scans column j of the data rows and returns the most
// specific type that fits every non-null cell.
func inferColumnType(rows [][]string, j int) aqp.Type {
	isInt, isFloat, isBool := true, true, true
	seen := false
	for _, rec := range rows {
		if j >= len(rec) {
			continue
		}
		cell := strings.TrimSpace(rec[j])
		if isNullCell(cell) {
			continue
		}
		seen = true
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			isFloat = false
		}
		if !strings.EqualFold(cell, "true") && !strings.EqualFold(cell, "false") {
			isBool = false
		}
		if !isInt && !isFloat && !isBool {
			break
		}
	}
	switch {
	case !seen:
		return aqp.TypeString
	case isBool:
		return aqp.TypeBool
	case isInt:
		return aqp.TypeInt64
	case isFloat:
		return aqp.TypeFloat64
	default:
		return aqp.TypeString
	}
}

func parseCell(t aqp.Type, cell string) (aqp.Value, error) {
	if isNullCell(cell) {
		return aqp.Null(t), nil
	}
	switch t {
	case aqp.TypeInt64:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return aqp.Value{}, err
		}
		return aqp.Int64(v), nil
	case aqp.TypeFloat64:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return aqp.Value{}, err
		}
		return aqp.Float64(v), nil
	case aqp.TypeBool:
		return aqp.Bool(strings.EqualFold(cell, "true")), nil
	default:
		return aqp.Str(cell), nil
	}
}
