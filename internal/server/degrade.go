package server

// Graceful degradation: the paper's survey shows every AQP technique
// fails somewhere (generality, error guarantees, or work saved), so a
// production service must degrade across techniques rather than fail. On
// a deadline or engine fault the server walks a ladder of cheaper
// techniques — OLA partial estimate, certified offline sample, synopsis —
// and returns the first answer it gets, flagged degraded:true with the
// substitute's own confidence interval. Each engine sits behind a
// consecutive-failure circuit breaker so a sick engine is skipped
// outright instead of being asked to fail again on every request.

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/trace"
)

// injectServerQuery fires inside handleQuery, after admission, within the
// handler's containment scope.
var injectServerQuery = fault.NewPoint("server.query", "query handler, post-admission")

// degradeLadder is the fallback order after the primary engine fails:
// cheapest path to an honest estimate first. OLA reads fresh data and
// owns a partial-result discipline; offline answers from certified
// samples without touching the base table; synopsis is O(synopsis) and
// the last resort (narrowest query class).
var degradeLadder = [...]string{"ola", "offline", "synopsis"}

// modeKey canonicalizes a request mode to its breaker/ladder key.
func modeKey(mode string) string {
	if mode == "" {
		return "auto"
	}
	return mode
}

// newBreakers builds one circuit breaker per engine mode. The map is
// complete and read-only after construction, so lookups need no lock.
// onTransition (may be nil) observes every state change with the engine
// key attached, feeding the flight recorder's breaker event stream.
func newBreakers(cfg Config, onTransition func(engine string, from, to fault.BreakerState)) map[string]*fault.Breaker {
	m := make(map[string]*fault.Breaker)
	for _, k := range []string{"auto", "exact", "online", "offline", "ola", "synopsis", "as-written"} {
		bc := fault.BreakerConfig{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}
		if onTransition != nil {
			engine := k
			bc.OnTransition = func(from, to fault.BreakerState) { onTransition(engine, from, to) }
		}
		m[k] = fault.NewBreaker(bc)
	}
	return m
}

// executeEngine runs one engine behind its circuit breaker: an open
// breaker short-circuits to ErrEngineUnavailable, outcomes feed the
// breaker, and a recovered panic is counted per engine.
func (s *Server) executeEngine(ctx context.Context, mode string, req QueryRequest) (*core.Result, error) {
	key := modeKey(mode)
	brk := s.brk[key]
	if brk != nil && !brk.Allow() {
		s.met.Inc(Key("breaker_open_total", "engine", key))
		return nil, fmt.Errorf("%w: circuit breaker open for engine %s", core.ErrEngineUnavailable, key)
	}
	req.Mode = mode
	res, err := s.execute(ctx, req)
	if errors.Is(err, core.ErrQueryPanic) {
		s.met.Inc(Key("query_panics_total", "engine", key))
	}
	if brk != nil {
		// Only engine faults (panics, injected faults) count against the
		// breaker: timeouts and parse errors say nothing about engine
		// health, and counting them would trip breakers under load.
		engineFault := err != nil && (errors.Is(err, core.ErrQueryPanic) || fault.Injected(err))
		if brk.Record(!engineFault) {
			s.met.Inc(Key("breaker_trips_total", "engine", key))
			s.cfg.Logger.Warn("circuit breaker tripped", "engine", key, "err", err.Error())
		}
	}
	return res, err
}

// degradable reports whether the ladder should catch this failure:
// deadline expiry, a contained panic, or an unavailable engine. Parse
// and semantic errors are the caller's, cancellation means the client is
// gone, and overload must shed — degrading any of those would waste
// capacity exactly when it is scarce.
func degradable(err error) bool {
	return errors.Is(err, core.ErrTimeout) ||
		errors.Is(err, core.ErrQueryPanic) ||
		errors.Is(err, core.ErrEngineUnavailable)
}

// executeResilient runs the requested engine and, on a degradable
// failure, walks the degradation ladder under a fresh per-rung budget
// carved from the parent (request) context — the primary context is
// typically already expired when the ladder starts. It returns the
// result, the mode degraded from ("" if the primary answered), and the
// primary error if every rung failed too.
func (s *Server) executeResilient(ctx, parent context.Context, req QueryRequest, workers int) (*core.Result, string, error) {
	res, err := s.executeEngine(ctx, req.Mode, req)
	if err == nil {
		return res, "", nil
	}
	primary := modeKey(req.Mode)
	if req.NoDegrade || s.cfg.DegradeBudget <= 0 || !degradable(err) || parent.Err() != nil {
		return nil, "", err
	}
	for _, rung := range degradeLadder {
		if rung == primary {
			continue
		}
		rctx, cancel := context.WithTimeout(parent, s.cfg.DegradeBudget)
		rctx = exec.ContextWithWorkers(rctx, workers)
		// The rung context derives from the raw request context, which
		// carries no tracer — re-attach the query's span so substitute
		// engines appear in the same trace.
		rctx = trace.Propagate(rctx, ctx)
		sub, rerr := s.executeEngine(rctx, rung, req)
		cancel()
		if rerr != nil {
			continue
		}
		sub.Diagnostics.Degraded = true
		sub.Diagnostics.Messages = append(sub.Diagnostics.Messages, fmt.Sprintf(
			"server: %s engine failed (%v); degraded to %s", primary, err, rung))
		s.met.Inc(Key("queries_degraded_total", "to", rung))
		s.cfg.Logger.Warn("query degraded", "from", primary, "to", rung, "err", err.Error())
		return sub, primary, nil
	}
	return nil, "", err
}

// BreakerStatus is one engine breaker's state for GET /faults.
type BreakerStatus struct {
	Engine string `json:"engine"`
	State  string `json:"state"`
	Trips  int64  `json:"trips"`
}

// FaultsResponse is the body of GET /faults.
type FaultsResponse struct {
	Installed bool                `json:"installed"`
	Points    []fault.PointStatus `json:"points"`
	Breakers  []BreakerStatus     `json:"breakers"`
}

// handleFaults lists the registered fault-injection points (with hit and
// fire counts) and the per-engine circuit breakers.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := FaultsResponse{Installed: fault.Active(), Points: fault.Status()}
	for _, k := range []string{"auto", "exact", "online", "offline", "ola", "synopsis", "as-written"} {
		b := s.brk[k]
		resp.Breakers = append(resp.Breakers, BreakerStatus{
			Engine: k, State: b.State().String(), Trips: b.Trips(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// engineTrippedGauges appends engine_tripped gauges (1 = breaker not
// closed) to the metrics gauge map.
func (s *Server) engineTrippedGauges(gauges map[string]int64) {
	for k, b := range s.brk {
		v := int64(0)
		if b.State() != fault.BreakerClosed {
			v = 1
		}
		gauges[Key("engine_tripped", "engine", k)] = v
	}
}
