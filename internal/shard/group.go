package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/storage"
)

// Group is a sharded view over a base table. For local groups the base
// stays the ingest surface (appends land there as before), and Sync
// routes newly appended rows to the member shards. For remote groups the
// shards are static partitions served by shard-server processes: the
// coordinator keeps the base table for planning and ground truth, and
// Sync is a no-op (remote topology changes are an operator action, not a
// query-path side effect). Every shard owns its rows, its sample seed,
// and its circuit breaker; the group owns only the routing.
type Group struct {
	name   string
	base   *storage.Table
	key    Key
	keyIdx int
	shards []Shard
	// locals is index-aligned with shards; nil entries are remote.
	locals   []*LocalShard
	remote   bool
	breakers []*fault.Breaker

	mu     sync.Mutex
	routed int             // base rows already routed to shards
	cuts   []storage.Value // range-kind upper boundaries, len Count-1
	obs    func(Event)
}

// GroupSummary is the static shape of a group, for diagnostics endpoints.
type GroupSummary struct {
	Table        string `json:"table"`
	Count        int    `json:"count"`
	Key          string `json:"key"`
	Remote       bool   `json:"remote,omitempty"`
	RowsPerShard []int  `json:"rows_per_shard"`
}

// Partition shards base by key. With key.Count == 1 the single shard
// references the base table directly — no copy, and (with the identity
// seed derivation for shard 0) execution is bit-identical to running
// unsharded. With more shards, rows are materialized into per-shard
// tables: hash routing spreads them uniformly; range routing cuts the
// current key distribution at even quantiles, so an empty base table
// cannot be range-partitioned. bcfg tunes the per-shard circuit breakers
// (zero value = library defaults).
func Partition(base *storage.Table, key Key, bcfg fault.BreakerConfig) (*Group, error) {
	if key.Count < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", key.Count)
	}
	g := &Group{name: base.Name(), base: base, key: key, keyIdx: -1}
	if key.Column != "" {
		g.keyIdx = base.Schema().ColumnIndex(key.Column)
		if g.keyIdx < 0 {
			return nil, fmt.Errorf("shard: key column %q not in table %s", key.Column, base.Name())
		}
	}
	if key.Count == 1 {
		s := newLocalShard(0, base)
		g.shards = []Shard{s}
		g.locals = []*LocalShard{s}
		g.breakers = []*fault.Breaker{fault.NewBreaker(bcfg)}
		g.routed = base.NumRows()
		return g, nil
	}
	if g.keyIdx < 0 {
		return nil, fmt.Errorf("shard: %d shards require a key column", key.Count)
	}
	if key.Kind == KeyRange {
		cuts, err := rangeCuts(base, g.keyIdx, key.Count)
		if err != nil {
			return nil, err
		}
		g.cuts = cuts
	}
	schema := base.Schema().Clone()
	for i := 0; i < key.Count; i++ {
		t := storage.NewTableWithBlockSize(
			fmt.Sprintf("%s__shard%d", base.Name(), i), schema, base.BlockSize())
		s := newLocalShard(i, t)
		g.shards = append(g.shards, s)
		g.locals = append(g.locals, s)
		g.breakers = append(g.breakers, fault.NewBreaker(bcfg))
	}
	if err := g.Sync(); err != nil {
		return nil, err
	}
	return g, nil
}

// AttachRemote builds a group whose shards live in shard-server processes
// at the given base URLs (one per shard, in shard-index order). The
// coordinator keeps base in its catalog for planning and exact ground
// truth; the servers must have been loaded with the matching partition of
// the same table (aqpgen -shards emits it) or scatter results will be
// honestly wrong about what they cover. Every server is probed once
// synchronously — an unreachable shard fails the attach loudly rather
// than surfacing later as a degraded first query — and then probed in the
// background at opt.ProbeInterval. Remote groups are static: Sync does
// not route new base appends across the wire.
func AttachRemote(base *storage.Table, key Key, addrs []string, opt RemoteOptions, bcfg fault.BreakerConfig) (*Group, error) {
	if key.Count < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", key.Count)
	}
	if len(addrs) != key.Count {
		return nil, fmt.Errorf("shard: %d shard addresses for %d shards", len(addrs), key.Count)
	}
	g := &Group{name: base.Name(), base: base, key: key, keyIdx: -1, remote: true}
	if key.Column != "" {
		g.keyIdx = base.Schema().ColumnIndex(key.Column)
		if g.keyIdx < 0 {
			return nil, fmt.Errorf("shard: key column %q not in table %s", key.Column, base.Name())
		}
	}
	if key.Count > 1 && g.keyIdx < 0 {
		return nil, fmt.Errorf("shard: %d shards require a key column", key.Count)
	}
	for i, addr := range addrs {
		rs := newRemoteShard(i, base.Name(), addr, opt)
		rs.onEvent = g.observe
		g.shards = append(g.shards, rs)
		g.locals = append(g.locals, nil)
		g.breakers = append(g.breakers, fault.NewBreaker(bcfg))
	}
	// Synchronous first probe with a short retry budget: shard servers
	// may still be binding their listeners.
	for _, s := range g.shards {
		rs := s.(*RemoteShard)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := fault.Retry(ctx, fault.RetryConfig{Tries: 5, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Seed: int64(rs.id)},
			func() error { return rs.probeOnce(ctx) })
		cancel()
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("shard: remote shard %d (%s) unreachable: %w", rs.id, rs.addr, err)
		}
	}
	for _, s := range g.shards {
		s.(*RemoteShard).startProber()
	}
	return g, nil
}

// Close stops background work (remote health probers). Safe on local
// groups and safe to call twice.
func (g *Group) Close() {
	for _, s := range g.shards {
		if rs, ok := s.(*RemoteShard); ok {
			rs.Close()
		}
	}
}

// Remote reports whether the group's shards are remote.
func (g *Group) Remote() bool { return g.remote }

// rangeCuts computes Count-1 upper boundaries at even quantiles of the
// key column's current distribution (nulls excluded — they route to
// shard 0 alongside the lowest range).
func rangeCuts(base *storage.Table, keyIdx, count int) ([]storage.Value, error) {
	snap := base.Snapshot()
	col := snap.Column(keyIdx)
	vals := make([]storage.Value, 0, snap.NumRows())
	for i := 0; i < snap.NumRows(); i++ {
		if v := col.Value(i); !v.IsNull() {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("shard: cannot range-partition %s: no non-null key values to cut", base.Name())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	cuts := make([]storage.Value, count-1)
	for i := 1; i < count; i++ {
		cuts[i-1] = vals[(i*len(vals))/count]
	}
	return cuts, nil
}

// route picks the shard index for a key value.
func (g *Group) route(v storage.Value) int {
	if g.key.Kind == KeyRange {
		if v.IsNull() {
			return 0
		}
		for i, cut := range g.cuts {
			if v.Compare(cut) < 0 {
				return i
			}
		}
		return len(g.shards) - 1
	}
	return hashRoute(v, len(g.shards))
}

// Sync routes base rows appended since the last Sync to their shards,
// preserving base order within each shard. It runs implicitly before
// every scatter, so queries over local groups always see the full table.
// Remote groups are static partitions and Sync is a no-op: rows appended
// to the coordinator's base copy after attach are NOT shipped across the
// wire (repartitioning is an operator action).
func (g *Group) Sync() error {
	if g.remote {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.shards) == 1 {
		// The single shard references base directly; nothing to copy.
		g.routed = g.base.NumRows()
		return nil
	}
	snap := g.base.Snapshot()
	n := snap.NumRows()
	if g.routed >= n {
		return nil
	}
	batches := make([][][]storage.Value, len(g.shards))
	for i := g.routed; i < n; i++ {
		row := snap.Row(i)
		key := row[g.keyIdx]
		dst := g.route(key)
		batches[dst] = append(batches[dst], row)
		if g.key.Kind == KeyRange {
			g.locals[dst].extendBounds(key)
		}
	}
	for i, rows := range batches {
		if len(rows) == 0 {
			continue
		}
		if err := g.locals[i].table.AppendRows(rows); err != nil {
			return fmt.Errorf("shard: sync %s shard %d: %w", g.name, i, err)
		}
	}
	g.routed = n
	return nil
}

// Name returns the base table name the group shards.
func (g *Group) Name() string { return g.name }

// Key returns the partitioning declaration.
func (g *Group) Key() Key { return g.key }

// NumShards returns the shard count.
func (g *Group) NumShards() int { return len(g.shards) }

// Shards returns the member shards in index order.
func (g *Group) Shards() []Shard {
	out := make([]Shard, len(g.shards))
	copy(out, g.shards)
	return out
}

// ShardTable returns shard i's in-process table, or nil when the shard is
// remote (its rows live in another process). Used by tooling that dumps
// or inspects local partitions.
func (g *Group) ShardTable(i int) *storage.Table {
	if i < 0 || i >= len(g.locals) || g.locals[i] == nil {
		return nil
	}
	return g.locals[i].table
}

// Rows returns the total (base) row count.
func (g *Group) Rows() int { return g.base.NumRows() }

// SetObserver installs a callback invoked with per-shard outcomes during
// scatters and with remote envelope events (retries, hedges, probe
// transitions); the server uses it for metrics and flight records.
func (g *Group) SetObserver(fn func(Event)) {
	g.mu.Lock()
	g.obs = fn
	g.mu.Unlock()
}

func (g *Group) observe(ev Event) {
	g.mu.Lock()
	fn := g.obs
	g.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// BuildSamples (re)materializes every shard's own uniform sample at the
// given rate; each shard's seed is derived independently here, so local
// and remote shards receive identical, already-derived seeds.
func (g *Group) BuildSamples(rate float64, seed int64) error {
	if err := g.Sync(); err != nil {
		return err
	}
	for _, s := range g.shards {
		if err := s.Rebuild(rate, DeriveSeed(seed, s.ID())); err != nil {
			return fmt.Errorf("shard: sample for %s shard %d: %w", g.name, s.ID(), err)
		}
	}
	return nil
}

// Health reports every shard's health, with breaker state stamped on.
func (g *Group) Health() []Health {
	out := make([]Health, len(g.shards))
	for i, s := range g.shards {
		h := s.Health()
		h.Open = g.breakers[i].State() != fault.BreakerClosed
		h.Trips = g.breakers[i].Trips()
		out[i] = h
	}
	return out
}

// Summary reports the group's static shape.
func (g *Group) Summary() GroupSummary {
	rows := make([]int, len(g.shards))
	for i, s := range g.shards {
		rows[i] = s.Rows()
	}
	return GroupSummary{Table: g.name, Count: len(g.shards), Key: g.key.String(), Remote: g.remote, RowsPerShard: rows}
}

// Map is a registry of shard groups keyed by table name. A nil *Map is a
// valid empty registry, so engines can hold one unconditionally.
type Map struct {
	mu     sync.Mutex
	groups map[string]*Group
}

// NewMap builds an empty registry.
func NewMap() *Map { return &Map{groups: map[string]*Group{}} }

// Add registers a group under its table name.
func (m *Map) Add(g *Group) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.groups[g.Name()]; ok {
		return fmt.Errorf("shard: table %s is already sharded", g.Name())
	}
	m.groups[g.Name()] = g
	return nil
}

// Get returns the group for a table, or nil (also on a nil receiver).
func (m *Map) Get(table string) *Group {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups[table]
}

// Names lists the sharded tables, sorted.
func (m *Map) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.groups))
	for n := range m.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summaries reports every group's shape, ordered by table name.
func (m *Map) Summaries() []GroupSummary {
	var out []GroupSummary
	for _, n := range m.Names() {
		out = append(out, m.Get(n).Summary())
	}
	return out
}

// SetObserver installs the observer on every current group.
func (m *Map) SetObserver(fn func(Event)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		g.SetObserver(fn)
	}
}

// Close stops background work on every group (remote health probers).
func (m *Map) Close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		g.Close()
	}
}
