package shard

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/workload"
)

func eventsTable(t *testing.T, rows int, seed int64) *storage.Table {
	t.Helper()
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	return ev.Table
}

func TestParseKeyKind(t *testing.T) {
	for s, want := range map[string]KeyKind{"hash": KeyHash, "range": KeyRange, "": KeyHash} {
		got, err := ParseKeyKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKeyKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKeyKind("mod"); err == nil {
		t.Fatal("ParseKeyKind accepted an unknown kind")
	}
}

func TestDeriveSeed(t *testing.T) {
	// Shard 0 is the identity: a one-shard group samples exactly like the
	// unsharded engine.
	if DeriveSeed(42, 0) != 42 {
		t.Fatalf("DeriveSeed(42, 0) = %d, want 42", DeriveSeed(42, 0))
	}
	// Other shards diverge from the base seed and from each other.
	seen := map[int64]bool{42: true}
	for id := 1; id < 64; id++ {
		s := DeriveSeed(42, id)
		if seen[s] {
			t.Fatalf("DeriveSeed(42, %d) = %d collides", id, s)
		}
		seen[s] = true
	}
	// Deterministic.
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
}

func TestPartitionHashRouting(t *testing.T) {
	base := eventsTable(t, 4000, 11)
	g, err := Partition(base, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Every row lands in exactly one shard.
	total := 0
	for _, sh := range g.Shards() {
		total += sh.Rows()
	}
	if total != base.NumRows() {
		t.Fatalf("shards hold %d rows, base has %d", total, base.NumRows())
	}
	// Hash routing balances within reason (4000 rows, 4 shards).
	for _, sh := range g.Shards() {
		if sh.Rows() < 500 || sh.Rows() > 1500 {
			t.Errorf("shard %d holds %d rows — hash routing badly skewed", sh.ID(), sh.Rows())
		}
	}
	// Same key value always routes to the same shard: rebuild and compare.
	g2, err := Partition(base, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range g.Shards() {
		if sh.Rows() != g2.Shards()[i].Rows() {
			t.Fatalf("routing not deterministic: shard %d %d vs %d rows", i, sh.Rows(), g2.Shards()[i].Rows())
		}
	}
}

func TestPartitionRangeRouting(t *testing.T) {
	base := eventsTable(t, 4000, 12)
	g, err := Partition(base, Key{Column: "ev_ts", Kind: KeyRange, Count: 4}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range g.Shards() {
		total += sh.Rows()
	}
	if total != base.NumRows() {
		t.Fatalf("shards hold %d rows, base has %d", total, base.NumRows())
	}
	// Shard key ranges are disjoint and ordered: max(shard i) <= min(shard i+1).
	shards := g.shards
	for i := 0; i+1 < len(shards); i++ {
		_, hi, ok1 := shards[i].Bounds()
		lo, _, ok2 := shards[i+1].Bounds()
		if !ok1 || !ok2 {
			t.Fatalf("range shard %d/%d missing bounds", i, i+1)
		}
		if hi.Compare(lo) > 0 {
			t.Fatalf("range shards overlap: shard %d max %v > shard %d min %v", i, hi, i+1, lo)
		}
	}
	// Quantile cuts keep shards roughly even.
	for _, sh := range g.Shards() {
		if sh.Rows() < 500 || sh.Rows() > 1500 {
			t.Errorf("range shard %d holds %d rows — cuts badly uneven", sh.ID(), sh.Rows())
		}
	}
}

func TestPartitionSingleShardNoCopy(t *testing.T) {
	base := eventsTable(t, 1000, 13)
	g, err := Partition(base, Key{Count: 1}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumShards() != 1 {
		t.Fatalf("NumShards = %d", g.NumShards())
	}
	// The single shard references the base table itself: same pointer, so
	// execution sees the identical snapshot/morsel grid as unsharded runs.
	if g.ShardTable(0) != base {
		t.Fatal("single shard does not reference the base table directly")
	}
}

func TestPartitionErrors(t *testing.T) {
	base := eventsTable(t, 100, 14)
	if _, err := Partition(base, Key{Column: "ev_user", Count: 0}, fault.BreakerConfig{}); err == nil {
		t.Error("accepted count 0")
	}
	if _, err := Partition(base, Key{Count: 4}, fault.BreakerConfig{}); err == nil {
		t.Error("accepted multi-shard partition without key column")
	}
	if _, err := Partition(base, Key{Column: "nope", Count: 4}, fault.BreakerConfig{}); err == nil {
		t.Error("accepted unknown key column")
	}
	empty := storage.NewTable("e", base.Schema().Clone())
	if _, err := Partition(empty, Key{Column: "ev_ts", Kind: KeyRange, Count: 4}, fault.BreakerConfig{}); err == nil {
		t.Error("range-partitioned an empty table (no cut points exist)")
	}
	// Hash-partitioning an empty table is fine: rows route as they arrive.
	if _, err := Partition(empty, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{}); err != nil {
		t.Errorf("hash partition of empty table: %v", err)
	}
}

func TestSyncRoutesNewRows(t *testing.T) {
	base := eventsTable(t, 2000, 15)
	g, err := Partition(base, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, g.NumShards())
	for i, sh := range g.Shards() {
		before[i] = sh.Rows()
	}
	// Append directly to the base (the ingest surface), then sync.
	fresh := eventsTable(t, 500, 16)
	for i := 0; i < fresh.NumRows(); i++ {
		if err := base.AppendRow(fresh.Row(i)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, sh := range g.Shards() {
		moved += sh.Rows() - before[i]
	}
	if moved != 500 {
		t.Fatalf("sync routed %d rows, want 500", moved)
	}
	// Sync is idempotent.
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range g.Shards() {
		total += sh.Rows()
	}
	if total != base.NumRows() {
		t.Fatalf("after second sync shards hold %d rows, base %d", total, base.NumRows())
	}
}

func TestBuildSamplesPerShard(t *testing.T) {
	base := eventsTable(t, 2000, 17)
	g, err := Partition(base, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.BuildSamples(0.25, 99); err != nil {
		t.Fatal(err)
	}
	for i, h := range g.Health() {
		if h.SampleRows <= 0 {
			t.Errorf("shard %d has no materialized sample", i)
		}
		if !h.SampleFresh {
			t.Errorf("shard %d sample not fresh right after build", i)
		}
	}
	// Appending to the base makes shard samples stale after sync.
	if err := base.AppendRow(eventsTable(t, 1, 18).Row(0)...); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, h := range g.Health() {
		if h.SampleRows > 0 && !h.SampleFresh {
			stale++
		}
	}
	if stale == 0 {
		t.Error("no shard sample went stale after new rows arrived")
	}
}

func TestMapRegistry(t *testing.T) {
	var nilMap *Map
	if nilMap.Get("x") != nil || nilMap.Names() != nil {
		t.Fatal("nil Map is not inert")
	}
	m := NewMap()
	base := eventsTable(t, 200, 19)
	g, err := Partition(base, Key{Column: "ev_user", Count: 2, Kind: KeyHash}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(g); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(g); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if m.Get("events") != g || m.Get("other") != nil {
		t.Fatal("Get lookup wrong")
	}
	sums := m.Summaries()
	if len(sums) != 1 || sums[0].Table != "events" || sums[0].Count != 2 {
		t.Fatalf("Summaries = %+v", sums)
	}
}
