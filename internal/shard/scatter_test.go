package shard

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/workload"
)

func parse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt
}

func scatterFixture(t *testing.T, key Key, bcfg fault.BreakerConfig) (*workload.Events, *Group) {
	t.Helper()
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 101, Rows: 4000, NumGroups: 16, Skew: 0.8, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Partition(ev.Table, key, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	return ev, g
}

// finalize runs the gather tail of a scatter against the unsharded plan.
func finalize(t *testing.T, ev *workload.Events, sql string, sres *ScatterResult) *exec.Result {
	t.Helper()
	p, err := plan.Build(parse(t, sql), ev.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plan.ClearSamplers(p)
	res, err := exec.FinalizeAggPartial(context.Background(), p, sres.Partial)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func direct(t *testing.T, ev *workload.Events, sql string) *exec.Result {
	t.Helper()
	p, err := plan.Build(parse(t, sql), ev.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plan.ClearSamplers(p)
	res, err := exec.RunParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertRowsClose(t *testing.T, sql string, want, got *exec.Result) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%q: %d rows vs %d", sql, got.NumRows(), want.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			wv, gv := want.Value(i, j), got.Value(i, j)
			if wv.Typ == storage.TypeFloat64 && !wv.IsNull() && !gv.IsNull() {
				w, g := wv.AsFloat(), gv.AsFloat()
				if math.Abs(w-g) > 1e-9*math.Max(1, math.Abs(w)) {
					t.Errorf("%q row %d col %d: sharded %v vs direct %v", sql, i, j, g, w)
				}
				continue
			}
			if wv != gv {
				t.Errorf("%q row %d col %d: sharded %v vs direct %v", sql, i, j, gv, wv)
			}
		}
	}
}

// TestScatterExactMatchesUnsharded: an exact scatter over hash shards
// merged back must agree with the unsharded run (to float tolerance: the
// partition changes summation bracketing).
func TestScatterExactMatchesUnsharded(t *testing.T) {
	ev, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	for _, sql := range []string{
		"SELECT COUNT(*) AS c, SUM(ev_value) AS s, AVG(ev_value) AS a FROM events",
		"SELECT ev_group, COUNT(*) AS c, SUM(ev_value) AS s FROM events GROUP BY ev_group ORDER BY ev_group",
		"SELECT ev_group, SUM(ev_value) AS s FROM events WHERE ev_user > 100 GROUP BY ev_group HAVING SUM(ev_value) > 0 ORDER BY s DESC LIMIT 5",
	} {
		sres, err := g.Scatter(context.Background(), parse(t, sql), ExecOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if sres.Degraded() || len(sres.Pruned) != 0 {
			t.Fatalf("%q: unexpected degradation %v / pruning %v", sql, sres.Failed, sres.Pruned)
		}
		if sres.CoveredRows != sres.TotalRows || sres.TotalRows != 4000 {
			t.Fatalf("%q: covered %d of %d", sql, sres.CoveredRows, sres.TotalRows)
		}
		assertRowsClose(t, sql, direct(t, ev, sql), finalize(t, ev, sql, sres))
	}
}

// TestScatterSampledEstimates: scattering with per-shard derived-seed
// samplers yields an estimate near the truth (cross-shard independence
// keeps the composition honest).
func TestScatterSampledEstimates(t *testing.T) {
	ev, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	sql := "SELECT SUM(ev_value) AS s FROM events"
	truth := direct(t, ev, sql).Value(0, 0).AsFloat()

	spec := &sample.Spec{Kind: sample.KindUniformRow, Rate: 0.2, Seed: 7}
	sres, err := g.Scatter(context.Background(), parse(t, sql), ExecOptions{Workers: 4, Sample: spec})
	if err != nil {
		t.Fatal(err)
	}
	res := finalize(t, ev, sql, sres)
	est := res.Value(0, 0).AsFloat()
	if math.Abs(est-truth) > 0.15*math.Abs(truth) {
		t.Fatalf("sampled estimate %v far from truth %v", est, truth)
	}
	// The finalized result carries a usable variance for CI composition.
	if len(res.Details) == 0 || res.Details[0].Aggs[0].Variance <= 0 {
		t.Fatalf("sampled scatter produced no variance: %+v", res.Details)
	}
}

// TestScatterRangePruning: a range predicate on the shard key prunes the
// shards whose bounds cannot match, and the answer is still exact.
func TestScatterRangePruning(t *testing.T) {
	ev, g := scatterFixture(t, Key{Column: "ev_ts", Kind: KeyRange, Count: 4}, fault.BreakerConfig{})
	// Constrain to the lowest shard's range: strictly below the first cut.
	sql := fmt.Sprintf(
		"SELECT COUNT(*) AS c, SUM(ev_value) AS s FROM events WHERE ev_ts < %d", g.cuts[0].AsInt())
	sres, err := g.Scatter(context.Background(), parse(t, sql), ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Pruned) == 0 {
		t.Fatal("no shard was pruned by a predicate confined to one range")
	}
	if sres.Degraded() {
		t.Fatalf("pruning must not read as degradation: %v", sres.Failed)
	}
	// Pruned shards count as covered: they provably hold no matching rows.
	if sres.CoveredRows != sres.TotalRows {
		t.Fatalf("covered %d of %d with pruning", sres.CoveredRows, sres.TotalRows)
	}
	assertRowsClose(t, sql, direct(t, ev, sql), finalize(t, ev, sql, sres))
}

// TestScatterAllPruned: a predicate outside every shard's range still has
// a well-defined empty-input answer.
func TestScatterAllPruned(t *testing.T) {
	ev, g := scatterFixture(t, Key{Column: "ev_ts", Kind: KeyRange, Count: 4}, fault.BreakerConfig{})
	sql := "SELECT COUNT(*) AS c FROM events WHERE ev_ts > 100000"
	sres, err := g.Scatter(context.Background(), parse(t, sql), ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Pruned) != 4 {
		t.Fatalf("pruned %v, want all 4 shards", sres.Pruned)
	}
	res := finalize(t, ev, sql, sres)
	if res.NumRows() != 1 || res.Value(0, 0).AsInt() != 0 {
		t.Fatalf("all-pruned COUNT(*) = %v", res.Rows)
	}
}

// TestScatterFaultDegradesAlone: a panic injected into one shard's
// estimate point is contained to that shard; with AllowDegraded the query
// answers from the survivors, without it the query fails.
func TestScatterFaultDegradesAlone(t *testing.T) {
	_, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	rules, err := fault.ParseRules("shard.estimate.2:panic:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.Schedule{Seed: 1, Rules: rules})
	defer fault.Uninstall()

	sql := "SELECT COUNT(*) AS c FROM events"
	stmt := parse(t, sql)
	sres, err := g.Scatter(context.Background(), stmt, ExecOptions{Workers: 4, AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Failed) != 1 || sres.Failed[0] != 2 {
		t.Fatalf("Failed = %v, want [2]", sres.Failed)
	}
	for i, o := range sres.Outcomes {
		want := "ok"
		if i == 2 {
			want = "fail"
		}
		if o.Status != want {
			t.Fatalf("shard %d status %q, want %q", i, o.Status, want)
		}
	}
	if sres.CoveredRows >= sres.TotalRows || sres.CoveredRows <= 0 {
		t.Fatalf("degraded coverage %d of %d", sres.CoveredRows, sres.TotalRows)
	}
	// Survivor count is exactly the three live shards' rows.
	wantRows := 0
	for i, sh := range g.Shards() {
		if i != 2 {
			wantRows += sh.Rows()
		}
	}
	res, err := exec.FinalizeAggPartial(context.Background(), mustPlan(t, g, stmt), sres.Partial)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0, 0).AsInt(); got != int64(wantRows) {
		t.Fatalf("degraded COUNT(*) = %d, want survivors' %d", got, wantRows)
	}

	// Strict mode: the same failure is fatal.
	if _, err := g.Scatter(context.Background(), stmt, ExecOptions{Workers: 4}); err == nil {
		t.Fatal("AllowDegraded=false accepted a failed shard")
	}
}

func mustPlan(t *testing.T, g *Group, stmt *sqlparse.SelectStmt) plan.Node {
	t.Helper()
	cat := storage.NewCatalog()
	if err := cat.AddAs(g.Name(), g.base); err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan.ClearSamplers(p)
	return p
}

// TestScatterBreakerOpens: repeated failures trip the shard's breaker, and
// while open the shard is skipped without running.
func TestScatterBreakerOpens(t *testing.T) {
	_, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 4},
		fault.BreakerConfig{Threshold: 1})
	rules, err := fault.ParseRules("shard.estimate.1:error:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.Schedule{Seed: 2, Rules: rules})
	defer fault.Uninstall()

	stmt := parse(t, "SELECT COUNT(*) AS c FROM events")
	sres, err := g.Scatter(context.Background(), stmt, ExecOptions{Workers: 4, AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Outcomes[1].Status != "fail" {
		t.Fatalf("first scatter shard 1 status %q, want fail", sres.Outcomes[1].Status)
	}

	// The breaker (threshold 1, default cooldown) is now open: the next
	// scatter skips shard 1 without invoking it even after the fault is
	// removed.
	fault.Uninstall()
	sres, err = g.Scatter(context.Background(), stmt, ExecOptions{Workers: 4, AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Outcomes[1].Status != "open" {
		t.Fatalf("second scatter shard 1 status %q, want open", sres.Outcomes[1].Status)
	}
	h := g.Health()
	if !h[1].Open || h[1].Trips < 1 {
		t.Fatalf("health does not show shard 1 open/tripped: %+v", h[1])
	}
}

// TestScatterObserverEvents: the group observer sees one event per shard
// per scatter with the shard's outcome.
func TestScatterObserverEvents(t *testing.T) {
	_, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 3}, fault.BreakerConfig{})
	var events []Event
	g.SetObserver(func(ev Event) { events = append(events, ev) })
	if _, err := g.Scatter(context.Background(), parse(t, "SELECT COUNT(*) AS c FROM events"),
		ExecOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Table != "events" || ev.Shard != i || ev.Type != "ok" {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

// TestScatterRejectsUnsupported: joins and non-aggregate statements are
// not scatterable.
func TestScatterRejectsUnsupported(t *testing.T) {
	_, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 2}, fault.BreakerConfig{})
	if _, err := g.Scatter(context.Background(), parse(t, "SELECT ev_value FROM events"),
		ExecOptions{Workers: 2}); err == nil {
		t.Error("accepted a non-aggregate statement")
	}
}

// TestKeyInterval: WHERE-clause interval extraction for pruning.
func TestKeyInterval(t *testing.T) {
	iv := func(sql string) (storage.Value, storage.Value) {
		return keyInterval(parse(t, sql).Where, "ev_ts")
	}
	lo, hi := iv("SELECT COUNT(*) FROM events WHERE ev_ts > 10 AND ev_ts <= 20")
	if lo.IsNull() || lo.AsInt() != 10 || hi.IsNull() || hi.AsInt() != 20 {
		t.Fatalf("range conjuncts: lo=%v hi=%v", lo, hi)
	}
	lo, hi = iv("SELECT COUNT(*) FROM events WHERE ev_ts = 7")
	if lo.AsInt() != 7 || hi.AsInt() != 7 {
		t.Fatalf("equality: lo=%v hi=%v", lo, hi)
	}
	// Flipped literal side.
	lo, hi = iv("SELECT COUNT(*) FROM events WHERE 100 > ev_ts")
	if !lo.IsNull() || hi.IsNull() || hi.AsInt() != 100 {
		t.Fatalf("flipped: lo=%v hi=%v", lo, hi)
	}
	// OR disables extraction (not a top-level conjunct).
	lo, hi = iv("SELECT COUNT(*) FROM events WHERE ev_ts < 5 OR ev_flag")
	if !lo.IsNull() || !hi.IsNull() {
		t.Fatalf("OR leaked a bound: lo=%v hi=%v", lo, hi)
	}
	// Other columns don't constrain the key.
	lo, hi = iv("SELECT COUNT(*) FROM events WHERE ev_user < 5")
	if !lo.IsNull() || !hi.IsNull() {
		t.Fatalf("foreign column leaked a bound: lo=%v hi=%v", lo, hi)
	}
}

// TestScatterStragglerDeadline: a shard stuck past the deadline is
// abandoned as failed; survivors still answer under AllowDegraded.
func TestScatterStragglerDeadline(t *testing.T) {
	_, g := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 4}, fault.BreakerConfig{})
	rules, err := fault.ParseRules("shard.estimate.3:latency:1:1h")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.Schedule{Seed: 3, Rules: rules})
	defer fault.Uninstall()

	sres, err := g.Scatter(context.Background(), parse(t, "SELECT COUNT(*) AS c FROM events"),
		ExecOptions{Workers: 4, AllowDegraded: true, StragglerTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Failed) != 1 || sres.Failed[0] != 3 {
		t.Fatalf("Failed = %v, want [3]", sres.Failed)
	}
}
