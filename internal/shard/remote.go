package shard

// RemoteShard: the network implementation of the Shard interface, wrapped
// in a robustness envelope. Every call gets (1) a per-call deadline
// derived from the query deadline minus gather slack, (2) deterministic
// seeded-jitter retries for these idempotent endpoints, with permanent
// (4xx) failures exempted via fault.ErrNoRetry and the retry budget
// capped and counted, and (3) tail-latency hedging: when the first
// attempt is slower than a p95-based delay, a second identical request
// fires and the first response wins, the loser cancelled through the
// shared context. The hedge rate is capped so a persistently slow server
// degrades into ordinary timeouts instead of doubling its own load.
// Fault points at remote.dial / remote.send / remote.recv / remote.decode
// let the chaos harness kill, delay, or corrupt the wire deterministically.
//
// Failure semantics are inherited from the scatter executor: a remote
// call that exhausts its envelope is one failed shard — its stratum is
// extrapolated (hash keys) or refused (range keys) by the gather step,
// flagged Degraded, and attributed in health, metrics, and flight
// records. Never a silent wrong answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Fault points on the wire seams, armed by the standard chaos schedules.
var (
	injectRemoteDial   = fault.NewPoint("remote.dial", "remote shard: before issuing the HTTP request")
	injectRemoteSend   = fault.NewPoint("remote.send", "remote shard: request transmit")
	injectRemoteRecv   = fault.NewPoint("remote.recv", "remote shard: response receive")
	injectRemoteDecode = fault.NewPoint("remote.decode", "remote shard: partial-state decode")
)

const (
	// maxRemoteTries caps the retry budget per logical call regardless of
	// configuration: a shard that needs more than 4 attempts is degraded,
	// not retried into availability.
	maxRemoteTries = 4
	// maxWireBytes bounds a response read (64 MiB — far above any real
	// partial, small enough to contain a runaway server).
	maxWireBytes = 64 << 20
	// coldHedgeDelay is the hedge delay before the latency ring has
	// enough observations to estimate a p95.
	coldHedgeDelay = 25 * time.Millisecond
)

// RemoteOptions tunes the remote-shard client envelope. The zero value
// gives sane defaults throughout.
type RemoteOptions struct {
	// CallTimeout caps any single RPC (default 10s). The effective
	// per-call deadline is min(CallTimeout, query deadline − GatherSlack).
	CallTimeout time.Duration
	// GatherSlack is reserved out of the query deadline for the merge/
	// finalize step after the last shard answers (default 100ms).
	GatherSlack time.Duration
	// Retry tunes the per-call retry envelope. Tries is capped at 4; the
	// jitter is seeded per shard, so replays retry identically.
	Retry fault.RetryConfig
	// HedgeDelay fixes the hedge delay. 0 selects the adaptive delay: the
	// p95 of the shard's recent call latencies (25ms until warmed up).
	// Negative disables hedging.
	HedgeDelay time.Duration
	// HedgeMaxFraction caps hedged calls as a fraction of total calls
	// (default 0.1). Negative disables hedging.
	HedgeMaxFraction float64
	// ProbeInterval is the background health-probe cadence (default 2s).
	// Negative disables background probing (the attach-time probe still
	// runs).
	ProbeInterval time.Duration
	// Client overrides the HTTP client (tests; defaults to a dedicated
	// client with connection reuse).
	Client *http.Client
}

// latRing is a fixed ring of recent call latencies for the adaptive
// hedge delay.
type latRing struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // total observations (saturating at len(buf) for reads)
	next int
}

func (r *latRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-quantile of the ring, requiring at least 8
// observations before it claims to know anything.
func (r *latRing) quantile(q float64) (time.Duration, bool) {
	r.mu.Lock()
	n := r.n
	tmp := make([]time.Duration, n)
	copy(tmp, r.buf[:n])
	r.mu.Unlock()
	if n < 8 {
		return 0, false
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(n-1))
	return tmp[idx], true
}

// RemoteShard forwards Shard calls to a shard-server process over the
// versioned wire schema. Safe for concurrent use.
type RemoteShard struct {
	id      int
	table   string
	addr    string // base URL, e.g. http://127.0.0.1:9101
	opt     RemoteOptions
	client  *http.Client
	onEvent func(Event) // set once at attach, before any call

	calls     atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	lats latRing

	mu          sync.Mutex
	rows        int
	sampleRows  int
	sampleFresh bool
	alive       bool
	probeMS     float64

	stopOnce sync.Once
	stop     chan struct{}
}

func newRemoteShard(id int, table, addr string, opt RemoteOptions) *RemoteShard {
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	return &RemoteShard{
		id:     id,
		table:  table,
		addr:   strings.TrimRight(addr, "/"),
		opt:    opt,
		client: client,
		stop:   make(chan struct{}),
	}
}

// ID implements Shard.
func (r *RemoteShard) ID() int { return r.id }

// Kind implements Shard.
func (r *RemoteShard) Kind() string { return "remote" }

// Addr returns the shard server's base URL.
func (r *RemoteShard) Addr() string { return r.addr }

// Rows implements Shard: the population size last reported by the shard
// server (attach probes synchronously, so this is live before the first
// query).
func (r *RemoteShard) Rows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rows
}

// Bounds implements Shard: remote shards don't track key bounds, so they
// never prune — the safe default.
func (r *RemoteShard) Bounds() (lo, hi storage.Value, ok bool) {
	return storage.Value{}, storage.Value{}, false
}

// Estimate implements Shard: serialize the query, run it through the
// retry/hedge envelope, decode the partial.
func (r *RemoteShard) Estimate(ctx context.Context, q Query, workers int) (*exec.AggPartial, error) {
	if q.Stmt == nil {
		return nil, fmt.Errorf("shard %d: remote estimate without a statement", r.id)
	}
	req := EstimateRequest{V: WireVersion, Table: r.table, SQL: q.Stmt.String(), Sample: q.Sample, Workers: workers}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cctx, cancel := r.callCtx(ctx)
	defer cancel()
	var resp EstimateResponse
	if err := r.call(cctx, "/shard/estimate", body, &resp); err != nil {
		return nil, err
	}
	if err := injectRemoteDecode.Inject(); err != nil {
		return nil, fmt.Errorf("shard %d: %w", r.id, err)
	}
	if resp.V != WireVersion {
		return nil, fmt.Errorf("shard %d: estimate response wire version %d (this build speaks v%d)", r.id, resp.V, WireVersion)
	}
	part, err := exec.DecodeAggPartialWire(resp.Partial)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", r.id, err)
	}
	r.mu.Lock()
	r.rows = resp.Rows
	r.mu.Unlock()
	return part, nil
}

// Rebuild implements Shard. The seed is already shard-derived; rebuild is
// idempotent (same rate+seed → same sample), so the retry envelope applies.
func (r *RemoteShard) Rebuild(rate float64, seed int64) error {
	req := RebuildRequest{V: WireVersion, Table: r.table, Rate: rate, Seed: seed}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.callTimeout())
	defer cancel()
	var resp RebuildResponse
	if err := r.call(ctx, "/shard/rebuild", body, &resp); err != nil {
		return err
	}
	r.mu.Lock()
	r.sampleRows = resp.SampleRows
	r.sampleFresh = true
	r.mu.Unlock()
	return nil
}

// Health implements Shard, reporting the last probe's view plus the
// envelope counters. Breaker state is stamped on by the owning Group.
func (r *RemoteShard) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Health{
		ID:             r.id,
		Kind:           "remote",
		Addr:           r.addr,
		Rows:           r.rows,
		SampleRows:     r.sampleRows,
		SampleFresh:    r.sampleFresh,
		Alive:          r.alive,
		ProbeLatencyMS: r.probeMS,
		Retries:        r.retries.Load(),
		Hedges:         r.hedges.Load(),
		HedgeWins:      r.hedgeWins.Load(),
	}
}

// Close stops the background prober. Safe to call twice.
func (r *RemoteShard) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
}

func (r *RemoteShard) callTimeout() time.Duration {
	if r.opt.CallTimeout > 0 {
		return r.opt.CallTimeout
	}
	return 10 * time.Second
}

// callCtx derives the per-call deadline: the configured cap, tightened to
// the query deadline minus gather slack so the coordinator always keeps
// enough budget to merge and answer honestly after the last shard.
func (r *RemoteShard) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	limit := r.callTimeout()
	if dl, ok := ctx.Deadline(); ok {
		slack := r.opt.GatherSlack
		if slack <= 0 {
			slack = 100 * time.Millisecond
		}
		if rem := time.Until(dl) - slack; rem < limit {
			limit = rem
		}
	}
	if limit <= 0 {
		// The budget is already spent; fail fast rather than hang.
		limit = time.Millisecond
	}
	return context.WithTimeout(ctx, limit)
}

// call runs one logical RPC through the retry envelope. attempts beyond
// the first are counted and surfaced as events/metrics.
func (r *RemoteShard) call(ctx context.Context, path string, body []byte, out any) error {
	cfg := r.opt.Retry
	if cfg.Tries <= 0 {
		cfg.Tries = 3
	}
	if cfg.Tries > maxRemoteTries {
		cfg.Tries = maxRemoteTries
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(r.id) + 1
	}
	tid := traceIDFrom(ctx)
	attempt := 0
	return fault.Retry(ctx, cfg, func() error {
		attempt++
		if attempt > 1 {
			r.retries.Add(1)
			r.emit("retry", tid)
		}
		return r.hedged(ctx, path, body, out)
	})
}

// hedged runs one attempt with tail-latency hedging: if the first request
// hasn't answered within the hedge delay (and the hedge budget allows), a
// second identical request fires; the first response wins and the loser
// is cancelled through the shared context.
func (r *RemoteShard) hedged(ctx context.Context, path string, body []byte, out any) error {
	r.calls.Add(1)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	launch := func(isHedge bool) {
		data, err := r.once(hctx, path, body)
		ch <- result{data, err, isHedge}
	}
	go launch(false)
	outstanding := 1

	var hedgeTimer <-chan time.Time
	if d, ok := r.hedgeDelay(); ok {
		hedgeTimer = time.After(d)
	}

	var firstErr error
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			r.hedges.Add(1)
			r.emit("hedge", traceIDFrom(ctx))
			outstanding++
			go launch(true)
		case res := <-ch:
			outstanding--
			if res.err == nil {
				cancel() // release the loser, if one is still in flight
				if res.hedged {
					r.hedgeWins.Add(1)
					r.emit("hedge_win", traceIDFrom(ctx))
				}
				if err := json.Unmarshal(res.data, out); err != nil {
					return fmt.Errorf("shard %d %s: decode response: %w", r.id, path, err)
				}
				return nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if outstanding == 0 {
				// Fast failures don't hedge: the retry envelope, not the
				// hedger, owns the re-attempt decision.
				return firstErr
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// hedgeDelay decides whether this call may hedge, and after how long.
func (r *RemoteShard) hedgeDelay() (time.Duration, bool) {
	if r.opt.HedgeDelay < 0 || r.opt.HedgeMaxFraction < 0 {
		return 0, false
	}
	frac := r.opt.HedgeMaxFraction
	if frac == 0 {
		frac = 0.1
	}
	if frac > 1 {
		frac = 1
	}
	// Budget: hedges may not exceed frac of calls (+1 so a cold client
	// can hedge its very first straggler).
	if float64(r.hedges.Load()) >= frac*float64(r.calls.Load())+1 {
		return 0, false
	}
	if r.opt.HedgeDelay > 0 {
		return r.opt.HedgeDelay, true
	}
	if d, ok := r.lats.quantile(0.95); ok {
		if d < time.Millisecond {
			d = time.Millisecond
		}
		return d, true
	}
	return coldHedgeDelay, true
}

// once issues a single HTTP request, threading the chaos fault points and
// recording the latency of successful calls for the adaptive hedge delay.
func (r *RemoteShard) once(ctx context.Context, path string, body []byte) ([]byte, error) {
	if err := injectRemoteDial.Inject(); err != nil {
		return nil, fmt.Errorf("shard %d %s: %w", r.id, path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sp := trace.SpanFromContext(ctx); sp != nil {
		if tp := sp.Traceparent(); tp != "" {
			req.Header.Set("traceparent", tp)
		}
	}
	if err := injectRemoteSend.Inject(); err != nil {
		return nil, fmt.Errorf("shard %d %s: %w", r.id, path, err)
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %d %s: %w", r.id, path, err)
	}
	defer resp.Body.Close()
	if err := injectRemoteRecv.Inject(); err != nil {
		return nil, fmt.Errorf("shard %d %s: %w", r.id, path, err)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return nil, fmt.Errorf("shard %d %s: read response: %w", r.id, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		var we WireError
		if json.Unmarshal(data, &we) == nil && we.Error != "" {
			msg = we.Error
		}
		err := fmt.Errorf("shard %d %s: HTTP %d: %s", r.id, path, resp.StatusCode, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
			resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
			// The server understood and rejected the request; retrying
			// the same bytes cannot succeed.
			err = fmt.Errorf("%w: %w", fault.ErrNoRetry, err)
		}
		return nil, err
	}
	r.lats.add(time.Since(start))
	return data, nil
}

// probeOnce performs one health probe, updating liveness state and
// emitting probe_up / probe_down transition events.
func (r *RemoteShard) probeOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.addr+"/shard/health", nil)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		r.setAlive(false, 0)
		return fmt.Errorf("shard %d health: %w", r.id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		r.setAlive(false, 0)
		return fmt.Errorf("shard %d health: HTTP %d", r.id, resp.StatusCode)
	}
	var hw HealthWire
	if err := json.Unmarshal(data, &hw); err != nil {
		r.setAlive(false, 0)
		return fmt.Errorf("shard %d health: %w", r.id, err)
	}
	if hw.V != WireVersion {
		r.setAlive(false, 0)
		return fmt.Errorf("shard %d health: wire version %d (this build speaks v%d)", r.id, hw.V, WireVersion)
	}
	lat := time.Since(start)
	r.mu.Lock()
	wasAlive := r.alive
	r.alive = true
	r.probeMS = float64(lat) / float64(time.Millisecond)
	r.rows = hw.Rows
	r.sampleRows = hw.SampleRows
	r.sampleFresh = hw.SampleFresh
	r.mu.Unlock()
	if !wasAlive {
		r.emit("probe_up", "")
	}
	return nil
}

func (r *RemoteShard) setAlive(alive bool, probeMS float64) {
	r.mu.Lock()
	was := r.alive
	r.alive = alive
	if probeMS > 0 {
		r.probeMS = probeMS
	}
	r.mu.Unlock()
	if was && !alive {
		r.emit("probe_down", "")
	}
}

// startProber launches the background health-probe loop.
func (r *RemoteShard) startProber() {
	interval := r.opt.ProbeInterval
	if interval < 0 {
		return
	}
	if interval == 0 {
		interval = 2 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				timeout := interval
				if timeout > 2*time.Second {
					timeout = 2 * time.Second
				}
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_ = r.probeOnce(ctx)
				cancel()
			}
		}
	}()
}

func (r *RemoteShard) emit(typ, traceID string) {
	if r.onEvent != nil {
		r.onEvent(Event{Table: r.table, Shard: r.id, Type: typ, TraceID: traceID})
	}
}

func traceIDFrom(ctx context.Context) string {
	if sp := trace.SpanFromContext(ctx); sp != nil {
		if tid := sp.TraceID(); !tid.IsZero() {
			return tid.String()
		}
	}
	return ""
}
