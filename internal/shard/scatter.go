package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Event is one shard-level occurrence delivered to the group observer
// (server metrics and flight records): a shard's outcome in one scatter,
// or a remote envelope event.
type Event struct {
	Table string
	Shard int
	// Type is a scatter outcome — "ok", "fail", "open" (breaker
	// rejected), or "pruned" — or a remote envelope event: "retry" (an
	// idempotent call re-attempted), "hedge" (a tail-latency hedge
	// fired), "hedge_win" (the hedge answered first), "probe_down" /
	// "probe_up" (background health-probe transitions).
	Type string
	// TraceID is the scatter's trace identifier ("" when the query ran
	// untraced), letting downstream recorders attribute the outcome to
	// its query by identity rather than by time overlap.
	TraceID string
}

// ExecOptions tunes one scatter execution.
type ExecOptions struct {
	// Workers is the total worker budget, divided evenly across shards
	// (each shard gets at least one).
	Workers int
	// Sample, when non-nil, is the sampler spec to push onto every
	// shard's scan; each shard's copy gets an independently derived seed.
	// Nil runs the shards exact (any statement-level TABLESAMPLE is
	// cleared, matching the exact engine).
	Sample *sample.Spec
	// AllowDegraded lets the query succeed on surviving shards when some
	// fail; false fails the whole query on the first shard error.
	AllowDegraded bool
	// StragglerTimeout, when > 0, abandons any shard that has not
	// finished within it, treating the shard as failed.
	StragglerTimeout time.Duration
	// ShardRates, when non-nil, overrides Sample.Rate per shard (indexed
	// by shard ID) — the Neyman-allocated stage-two fractions of a
	// contract run. Must have one entry per shard.
	ShardRates []float64
	// CollectMoments asks the scatter to record each surviving shard's
	// per-slot pilot moments before the merge consumes the partials.
	CollectMoments bool
}

// ShardOutcome is one shard's result in a ScatterResult.
type ShardOutcome struct {
	ID     int
	Rows   int
	Status string // "ok", "fail", "open", "pruned"
	Err    error
}

// ScatterResult is the gathered outcome of a scatter execution.
type ScatterResult struct {
	// Partial is the merged partial state of all surviving shards, ready
	// for exec.FinalizeAggPartial.
	Partial  *exec.AggPartial
	Outcomes []ShardOutcome
	// TotalRows is the group population; CoveredRows the population of
	// shards that contributed (succeeded or were provably empty of
	// matches, i.e. pruned).
	TotalRows   int
	CoveredRows int
	// Failed and Pruned list shard IDs by outcome.
	Failed []int
	Pruned []int
	// ShardMoments holds each shard's per-slot pilot moments (nil entry
	// for failed/pruned shards), populated when ExecOptions.CollectMoments
	// is set. Extracted before the ordered merge mutates the partials.
	ShardMoments [][]exec.SlotMoment
}

// Degraded reports whether any shard failed to contribute.
func (r *ScatterResult) Degraded() bool { return len(r.Failed) > 0 }

// Scatter executes the statement's aggregate subtree on every shard
// concurrently and gathers the partials in shard-index order. Sampler
// seeds are derived per shard so cross-shard inclusion decisions are
// independent; range groups additionally prune shards whose key bounds
// cannot satisfy a range predicate on the shard key. Per-shard circuit
// breakers reject work while open, and panics inside a shard (including
// injected ones) are contained to that shard's outcome.
func (g *Group) Scatter(ctx context.Context, stmt *sqlparse.SelectStmt, opt ExecOptions) (*ScatterResult, error) {
	if len(stmt.Joins) > 0 {
		return nil, fmt.Errorf("shard: scatter does not support joins")
	}
	if !stmt.HasAggregates() {
		return nil, fmt.Errorf("shard: scatter requires an aggregate query")
	}
	if err := g.Sync(); err != nil {
		return nil, err
	}

	n := len(g.shards)
	per := opt.Workers / n
	if per < 1 {
		per = 1
	}

	// Validate the statement's plan once against the base table, so a
	// malformed query fails the whole scatter loudly instead of surfacing
	// as N identical per-shard failures (or a "degraded" success).
	if _, err := BuildShardQueryPlan(Query{Stmt: stmt, Sample: opt.Sample}, g.base); err != nil {
		return nil, err
	}

	res := &ScatterResult{Outcomes: make([]ShardOutcome, n)}
	queries := make([]Query, n)
	skip := make([]string, n) // non-"" = skipped with this status
	lo, hi := keyInterval(stmt.Where, g.key.Column)
	for i, sh := range g.shards {
		res.TotalRows += sh.Rows()
		res.Outcomes[i] = ShardOutcome{ID: i, Rows: sh.Rows()}
		if g.key.Kind == KeyRange && n > 1 && pruned(sh, lo, hi) {
			skip[i] = "pruned"
			continue
		}
		if !g.breakers[i].Allow() {
			skip[i] = "open"
			continue
		}
		// Resolve the sampler spec per shard here, coordinator-side: the
		// derived seed and any per-shard rate override travel inside the
		// Query, so local and remote shards sample byte-identically.
		q := Query{Stmt: stmt}
		if opt.Sample != nil {
			spec := *opt.Sample
			if i < len(opt.ShardRates) && opt.ShardRates[i] >= 0 {
				spec.Rate = opt.ShardRates[i]
			}
			spec.Seed = DeriveSeed(opt.Sample.Seed, i)
			q.Sample = &spec
		}
		queries[i] = q
	}

	sp, sctx := trace.StartSpan(ctx, fmt.Sprintf("scatter %s (%d shards)", g.name, n))
	sp.SetAttr("key", g.key.String())
	defer sp.End()
	scatterTID := ""
	if tid := sp.TraceID(); !tid.IsZero() {
		scatterTID = tid.String()
	}

	// Pre-create per-shard spans in index order so profiles are stable.
	// Each leg is stamped with its own W3C traceparent — the exact header
	// a remote-shard RPC will carry when this seam goes over the wire —
	// so exported spans prove context propagation per leg.
	spans := make([]*trace.Span, n)
	for i := range g.shards {
		spans[i] = sp.StartChild(fmt.Sprintf("shard %d (%d rows)", i, g.shards[i].Rows()))
		if tp := spans[i].Traceparent(); tp != "" {
			spans[i].SetAttr("traceparent", tp)
		}
	}

	parts := make([]*exec.AggPartial, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range g.shards {
		if skip[i] != "" {
			spans[i].SetAttr("skipped", skip[i])
			spans[i].End()
			continue
		}
		wg.Add(1)
		// Each leg runs under its own span's context, so a remote shard
		// reads its leg's traceparent — not the scatter parent's — when
		// stamping the RPC headers.
		lctx := trace.ContextWithSpan(sctx, spans[i])
		go func(i int, lctx context.Context) {
			defer wg.Done()
			defer spans[i].End()
			parts[i], errs[i] = g.runShard(lctx, i, queries[i], per, opt.StragglerTimeout)
		}(i, lctx)
	}
	wg.Wait()

	// Gather in shard-index order: breaker and observer bookkeeping, then
	// the ordered merge (which IS the stratified composition).
	for i, sh := range g.shards {
		o := &res.Outcomes[i]
		switch {
		case skip[i] == "pruned":
			o.Status = "pruned"
			res.Pruned = append(res.Pruned, i)
			res.CoveredRows += sh.Rows() // provably holds no matching rows
		case skip[i] == "open":
			o.Status = "open"
			res.Failed = append(res.Failed, i)
		case errs[i] != nil:
			o.Status, o.Err = "fail", errs[i]
			g.breakers[i].Record(false)
			res.Failed = append(res.Failed, i)
		default:
			o.Status = "ok"
			g.breakers[i].Record(true)
			res.CoveredRows += sh.Rows()
		}
		g.observe(Event{Table: g.name, Shard: i, Type: o.Status, TraceID: scatterTID})
	}

	if len(res.Failed) > 0 && !opt.AllowDegraded {
		for _, i := range res.Failed {
			if res.Outcomes[i].Err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, res.Outcomes[i].Err)
			}
		}
		return nil, fmt.Errorf("shard: %d shard(s) unavailable (breaker open)", len(res.Failed))
	}
	if opt.CollectMoments {
		// Extract before MergeAggPartials mutates its first operand.
		res.ShardMoments = make([][]exec.SlotMoment, n)
		for i, p := range parts {
			res.ShardMoments[i] = p.SlotMoments()
		}
	}
	res.Partial = exec.MergeAggPartials(parts)
	if res.Partial == nil {
		if len(res.Pruned) > 0 && len(res.Failed) == 0 {
			// Every shard was provably empty of matches; the query still
			// has a well-defined (empty-input) result.
			res.Partial = exec.EmptyAggPartial()
		} else {
			return nil, fmt.Errorf("shard: no shard of %s produced a result (%s)", g.name, joinErrs(errs))
		}
	}
	sp.SetAttrInt("covered_rows", int64(res.CoveredRows))
	sp.SetAttrInt("failed", int64(len(res.Failed)))
	return res, nil
}

// runShard executes one shard's estimate, containing panics and applying
// the straggler deadline.
func (g *Group) runShard(ctx context.Context, i int, q Query, workers int, deadline time.Duration) (*exec.AggPartial, error) {
	sh := g.shards[i]
	run := func() (part *exec.AggPartial, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fault.AsError(r)
			}
		}()
		return sh.Estimate(ctx, q, workers)
	}
	if deadline <= 0 {
		return run()
	}
	type out struct {
		part *exec.AggPartial
		err  error
	}
	ch := make(chan out, 1)
	go func() {
		p, e := run()
		ch <- out{p, e}
	}()
	select {
	case o := <-ch:
		return o.part, o.err
	case <-time.After(deadline):
		return nil, fmt.Errorf("shard %d: straggler deadline %v exceeded", i, deadline)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// keyInterval extracts the [lo, hi] constraint a WHERE clause places on
// col through its top-level AND conjuncts (bounds are kept inclusive, so
// pruning is conservative). Either bound may be null = unconstrained.
func keyInterval(where expr.Expr, col string) (lo, hi storage.Value) {
	if where == nil || col == "" {
		return
	}
	var conjuncts []expr.Expr
	var collect func(e expr.Expr)
	collect = func(e expr.Expr) {
		if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
			collect(b.L)
			collect(b.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	collect(where)
	tighten := func(dst *storage.Value, v storage.Value, upper bool) {
		if dst.IsNull() || (upper && v.Compare(*dst) < 0) || (!upper && v.Compare(*dst) > 0) {
			*dst = v
		}
	}
	for _, c := range conjuncts {
		b, ok := c.(*expr.Binary)
		if !ok || !b.Op.Comparison() {
			continue
		}
		cr, lit, flipped := compareParts(b)
		if cr == nil || !strings.EqualFold(cr.Name, col) || lit.IsNull() {
			continue
		}
		op := b.Op
		if flipped { // 5 < col  ≡  col > 5
			switch op {
			case expr.OpLt:
				op = expr.OpGt
			case expr.OpLe:
				op = expr.OpGe
			case expr.OpGt:
				op = expr.OpLt
			case expr.OpGe:
				op = expr.OpLe
			}
		}
		switch op {
		case expr.OpEq:
			tighten(&lo, lit, false)
			tighten(&hi, lit, true)
		case expr.OpLt, expr.OpLe:
			tighten(&hi, lit, true)
		case expr.OpGt, expr.OpGe:
			tighten(&lo, lit, false)
		}
	}
	return lo, hi
}

// compareParts splits a comparison into its column and literal sides,
// reporting whether the literal was on the left.
func compareParts(b *expr.Binary) (cr *expr.ColRef, lit storage.Value, flipped bool) {
	if c, ok := b.L.(*expr.ColRef); ok {
		if l, ok := b.R.(*expr.Lit); ok {
			return c, l.Val, false
		}
	}
	if c, ok := b.R.(*expr.ColRef); ok {
		if l, ok := b.L.(*expr.Lit); ok {
			return c, l.Val, true
		}
	}
	return nil, storage.Value{}, false
}

// pruned reports whether the shard's observed key bounds fall entirely
// outside the predicate interval — the shard provably holds no matching
// rows and is skipped as covered, not degraded. Shards that don't track
// bounds (remote, or hash-routed) never prune, which is always safe.
func pruned(sh Shard, lo, hi storage.Value) bool {
	min, max, ok := sh.Bounds()
	if !ok {
		return false
	}
	if !lo.IsNull() && max.Compare(lo) < 0 {
		return true
	}
	if !hi.IsNull() && min.Compare(hi) > 0 {
		return true
	}
	return false
}

func joinErrs(errs []error) string {
	var parts []string
	for i, e := range errs {
		if e != nil {
			parts = append(parts, fmt.Sprintf("shard %d: %v", i, e))
		}
	}
	if len(parts) == 0 {
		return "no shards ran"
	}
	return strings.Join(parts, "; ")
}
