package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/workload"
)

// testShardHandler serves one partition table over the wire schema using
// the exact same plan-and-run path the real shard server uses, so
// envelope tests in this package exercise true request/response bytes
// without importing internal/server (which imports this package).
type testShardHandler struct {
	id  int
	tbl *storage.Table
	// hooks let tests shape failure behavior per request.
	mu       sync.Mutex
	requests int
	before   func(n int, w http.ResponseWriter) bool // true = handled (short-circuit)
}

func (h *testShardHandler) estimates() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.requests
}

func (h *testShardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/shard/health":
		json.NewEncoder(w).Encode(HealthWire{V: WireVersion, ShardID: h.id, Table: h.tbl.Name(), Rows: h.tbl.NumRows()})
	case "/shard/rebuild":
		var req RebuildRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(RebuildResponse{V: WireVersion, SampleRows: int(float64(h.tbl.NumRows()) * req.Rate)})
	case "/shard/estimate":
		h.mu.Lock()
		h.requests++
		n := h.requests
		before := h.before
		h.mu.Unlock()
		if before != nil && before(n, w) {
			return
		}
		var req EstimateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		stmt, err := sqlparse.Parse(req.SQL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, err := BuildShardQueryPlan(Query{Stmt: stmt, Sample: req.Sample}, h.tbl)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		part, err := exec.RunAggPartialContext(r.Context(), p, 2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		blob, err := exec.EncodeAggPartialWire(part)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(EstimateResponse{V: WireVersion, ShardID: h.id, Rows: h.tbl.NumRows(), Partial: blob})
	default:
		http.NotFound(w, r)
	}
}

// remoteFixture partitions the events table locally, then serves every
// partition over httptest — the same bytes a real shard-server process
// would see — and attaches a remote group pointed at them.
func remoteFixture(t *testing.T, shards int, opt RemoteOptions) (ev *workload.Events, local *Group, remote *Group, handlers []*testShardHandler) {
	t.Helper()
	evw, lg := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: shards}, fault.BreakerConfig{})
	var addrs []string
	for i := 0; i < shards; i++ {
		h := &testShardHandler{id: i, tbl: lg.ShardTable(i)}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		handlers = append(handlers, h)
		addrs = append(addrs, srv.URL)
	}
	rg, err := AttachRemote(evw.Table, Key{Column: "ev_user", Kind: KeyHash, Count: shards}, addrs,
		opt, fault.BreakerConfig{})
	if err != nil {
		t.Fatalf("attach remote: %v", err)
	}
	t.Cleanup(rg.Close)
	return evw, lg, rg, handlers
}

// TestRemoteScatterBitIdenticalToLocal: a healthy remote group must
// produce bit-identical finalized results to the in-process group over
// the same partitions and seeds — exact and sampled — at N∈{2,4}. This
// is the losslessness guarantee of the wire seam.
func TestRemoteScatterBitIdenticalToLocal(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, tc := range []struct {
			name string
			sql  string
			spec *sample.Spec
		}{
			{"exact", "SELECT ev_group, COUNT(*), SUM(ev_value) FROM events GROUP BY ev_group ORDER BY ev_group", nil},
			{"sampled", "SELECT COUNT(*), SUM(ev_value), AVG(ev_value) FROM events",
				&sample.Spec{Kind: sample.KindUniformRow, Rate: 0.3, Seed: 7}},
			{"percentile", "SELECT PERCENTILE(ev_value, 0.5) FROM events",
				&sample.Spec{Kind: sample.KindUniformRow, Rate: 0.5, Seed: 11}},
		} {
			t.Run(fmt.Sprintf("n%d/%s", shards, tc.name), func(t *testing.T) {
				fx, lg, rg, _ := remoteFixture(t, shards, RemoteOptions{ProbeInterval: -1})
				stmt := parse(t, tc.sql)
				opt := ExecOptions{Workers: 4, Sample: tc.spec}
				lres, err := lg.Scatter(context.Background(), stmt, opt)
				if err != nil {
					t.Fatalf("local scatter: %v", err)
				}
				rres, err := rg.Scatter(context.Background(), stmt, opt)
				if err != nil {
					t.Fatalf("remote scatter: %v", err)
				}
				if rres.Degraded() {
					t.Fatalf("healthy remote scatter degraded: %+v", rres.Failed)
				}
				if lres.TotalRows != rres.TotalRows || lres.CoveredRows != rres.CoveredRows {
					t.Fatalf("coverage differs: local %d/%d vs remote %d/%d",
						lres.CoveredRows, lres.TotalRows, rres.CoveredRows, rres.TotalRows)
				}
				lfin := finalize(t, fx, tc.sql, lres)
				rfin := finalize(t, fx, tc.sql, rres)
				assertBitIdentical(t, tc.sql, lfin, rfin)
			})
		}
	}
}

// assertBitIdentical requires exact value equality — no tolerance. Floats
// must match to the bit, which is what the wire codec promises.
func assertBitIdentical(t *testing.T, sql string, want, got *exec.Result) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%q: %d rows vs %d", sql, got.NumRows(), want.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Value(i, j) != got.Value(i, j) {
				t.Errorf("%q row %d col %d: remote %v != local %v (must be bit-identical)",
					sql, i, j, got.Value(i, j), want.Value(i, j))
			}
		}
	}
}

// TestRemoteRetriesTransient: 5xx responses are retried with the seeded
// backoff; the call succeeds on a later attempt, and the retries are
// counted and surfaced as events.
func TestRemoteRetriesTransient(t *testing.T) {
	fx, _, rg, handlers := remoteFixture(t, 2, RemoteOptions{
		ProbeInterval: -1, HedgeDelay: -1,
		Retry: fault.RetryConfig{Tries: 3, Base: time.Millisecond},
	})
	handlers[1].before = func(n int, w http.ResponseWriter) bool {
		if n <= 2 {
			http.Error(w, "transient overload", http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	var events []Event
	var mu sync.Mutex
	rg.SetObserver(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	sql := "SELECT COUNT(*) FROM events"
	res, err := rg.Scatter(context.Background(), parse(t, sql), ExecOptions{Workers: 2})
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if res.Degraded() {
		t.Fatalf("retryable failure degraded the scatter: %v", res.Failed)
	}
	h := rg.Shards()[1].Health()
	if h.Retries != 2 {
		t.Fatalf("shard 1 retries = %d, want 2", h.Retries)
	}
	mu.Lock()
	defer mu.Unlock()
	var retryEvents int
	for _, e := range events {
		if e.Type == "retry" && e.Shard == 1 {
			retryEvents++
		}
	}
	if retryEvents != 2 {
		t.Fatalf("observed %d retry events for shard 1, want 2", retryEvents)
	}
	_ = fx
}

// TestRemotePermanent4xxNotRetried: a 400 rejection is permanent — one
// request, no retries, the shard degrades immediately.
func TestRemotePermanent4xxNotRetried(t *testing.T) {
	_, _, rg, handlers := remoteFixture(t, 2, RemoteOptions{
		ProbeInterval: -1, HedgeDelay: -1,
		Retry: fault.RetryConfig{Tries: 4, Base: time.Millisecond},
	})
	handlers[0].before = func(n int, w http.ResponseWriter) bool {
		http.Error(w, "schema skew", http.StatusBadRequest)
		return true
	}
	res, err := rg.Scatter(context.Background(), parse(t, "SELECT COUNT(*) FROM events"),
		ExecOptions{Workers: 2, AllowDegraded: true})
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if !res.Degraded() || len(res.Failed) != 1 || res.Failed[0] != 0 {
		t.Fatalf("want shard 0 degraded, got failed=%v", res.Failed)
	}
	if got := handlers[0].estimates(); got != 1 {
		t.Fatalf("permanent 4xx hit the server %d times, want exactly 1", got)
	}
	if !errors.Is(res.Outcomes[0].Err, fault.ErrNoRetry) {
		t.Fatalf("outcome error %v does not mark the failure permanent", res.Outcomes[0].Err)
	}
	if h := rg.Shards()[0].Health(); h.Retries != 0 {
		t.Fatalf("permanent failure counted %d retries, want 0", h.Retries)
	}
}

// TestRemoteHedgeWins: when the first request straggles past the fixed
// hedge delay, a hedge fires and its response wins; the loser is
// cancelled and the counters and events say so.
func TestRemoteHedgeWins(t *testing.T) {
	_, _, rg, handlers := remoteFixture(t, 2, RemoteOptions{
		ProbeInterval: -1, HedgeDelay: 20 * time.Millisecond,
	})
	var n0 atomic.Int64
	handlers[0].before = func(n int, w http.ResponseWriter) bool {
		// Only the first concurrent request straggles; the hedge is fast.
		if n0.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond)
		}
		return false
	}
	var events []Event
	var mu sync.Mutex
	rg.SetObserver(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	res, err := rg.Scatter(context.Background(), parse(t, "SELECT COUNT(*) FROM events"),
		ExecOptions{Workers: 2})
	if err != nil || res.Degraded() {
		t.Fatalf("scatter: err=%v degraded=%v", err, res != nil && res.Degraded())
	}
	h := rg.Shards()[0].Health()
	if h.Hedges < 1 {
		t.Fatalf("no hedge fired for the straggling shard: %+v", h)
	}
	if h.HedgeWins < 1 {
		t.Fatalf("hedge fired but did not win against a 400ms straggler: %+v", h)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawHedge, sawWin bool
	for _, e := range events {
		if e.Shard == 0 && e.Type == "hedge" {
			sawHedge = true
		}
		if e.Shard == 0 && e.Type == "hedge_win" {
			sawWin = true
		}
	}
	if !sawHedge || !sawWin {
		t.Fatalf("hedge events missing: hedge=%v win=%v", sawHedge, sawWin)
	}
}

// TestRemoteHedgeBudget: the hedge rate is capped — a server that is
// always slow cannot double its own load through hedging.
func TestRemoteHedgeBudget(t *testing.T) {
	rs := newRemoteShard(0, "events", "http://127.0.0.1:9", RemoteOptions{
		HedgeDelay: time.Millisecond, HedgeMaxFraction: 0.1,
	})
	// Simulate 100 calls with the hedger consulted each time.
	var hedges int
	for i := 0; i < 100; i++ {
		rs.calls.Add(1)
		if _, ok := rs.hedgeDelay(); ok {
			rs.hedges.Add(1)
			hedges++
		}
	}
	if hedges > 11 {
		t.Fatalf("hedge budget admitted %d hedges over 100 calls (cap 0.1)", hedges)
	}
	if hedges == 0 {
		t.Fatal("hedge budget admitted no hedges at all")
	}
}

// TestRemoteCallDeadline: the per-call deadline is the query deadline
// minus gather slack — a server that never answers inside it fails the
// call quickly instead of hanging the scatter.
func TestRemoteCallDeadline(t *testing.T) {
	_, _, rg, handlers := remoteFixture(t, 2, RemoteOptions{
		ProbeInterval: -1, HedgeDelay: -1, GatherSlack: 20 * time.Millisecond,
		Retry: fault.RetryConfig{Tries: 1},
	})
	handlers[0].before = func(n int, w http.ResponseWriter) bool {
		time.Sleep(2 * time.Second)
		http.Error(w, "too late", http.StatusInternalServerError)
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := rg.Scatter(ctx, parse(t, "SELECT COUNT(*) FROM events"),
		ExecOptions{Workers: 2, AllowDegraded: true})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bound scatter took %v; the call deadline did not bind", elapsed)
	}
	if !res.Degraded() || len(res.Failed) != 1 || res.Failed[0] != 0 {
		t.Fatalf("want shard 0 degraded on deadline, got failed=%v", res.Failed)
	}
}

// TestRemoteVersionSkewRejected: a response speaking a different wire
// version is refused loudly, never guessed at.
func TestRemoteVersionSkewRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/shard/health":
			json.NewEncoder(w).Encode(HealthWire{V: WireVersion, Rows: 10})
		case "/shard/estimate":
			json.NewEncoder(w).Encode(EstimateResponse{V: 99, Partial: json.RawMessage(`{}`)})
		}
	}))
	defer srv.Close()
	rs := newRemoteShard(0, "events", srv.URL, RemoteOptions{HedgeDelay: -1, Retry: fault.RetryConfig{Tries: 1}})
	_, err := rs.Estimate(context.Background(), Query{Stmt: parse(t, "SELECT COUNT(*) FROM events")}, 1)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version-skewed response accepted or misreported: %v", err)
	}
}

// TestRemoteFaultPoints: the chaos fault points on the wire seams fire
// and surface as injected errors through the envelope.
func TestRemoteFaultPoints(t *testing.T) {
	for _, point := range []string{"remote.dial", "remote.send", "remote.recv", "remote.decode"} {
		t.Run(point, func(t *testing.T) {
			_, _, rg, _ := remoteFixture(t, 2, RemoteOptions{
				ProbeInterval: -1, HedgeDelay: -1,
				Retry: fault.RetryConfig{Tries: 1},
			})
			rules, err := fault.ParseRules(point + ":error:1")
			if err != nil {
				t.Fatal(err)
			}
			fault.Install(fault.Schedule{Seed: 1, Rules: rules})
			defer fault.Uninstall()
			// Probability 1 kills every shard: with no survivor there is no
			// partial, and the scatter refuses loudly — naming the injected
			// point — rather than inventing an answer.
			_, err = rg.Scatter(context.Background(), parse(t, "SELECT COUNT(*) FROM events"),
				ExecOptions{Workers: 2, AllowDegraded: true})
			if err == nil {
				t.Fatalf("point %s armed at prob 1 still produced a result", point)
			}
			if !strings.Contains(err.Error(), point) {
				t.Fatalf("total-failure error %v does not name the injected point %s", err, point)
			}
		})
	}
}

// TestRemoteDeadServerDegradesHonestly: killing a shard server mid-group
// degrades that stratum only; the result is flagged, the failed shard is
// attributed, and coverage excludes its rows.
func TestRemoteDeadServerDegradesHonestly(t *testing.T) {
	evw, lg := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 2}, fault.BreakerConfig{})
	var addrs []string
	var servers []*httptest.Server
	for i := 0; i < 2; i++ {
		h := &testShardHandler{id: i, tbl: lg.ShardTable(i)}
		srv := httptest.NewServer(h)
		servers = append(servers, srv)
		addrs = append(addrs, srv.URL)
	}
	defer servers[1].Close()
	rg, err := AttachRemote(evw.Table, Key{Column: "ev_user", Kind: KeyHash, Count: 2}, addrs,
		RemoteOptions{ProbeInterval: -1, HedgeDelay: -1, Retry: fault.RetryConfig{Tries: 2, Base: time.Millisecond}},
		fault.BreakerConfig{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer rg.Close()

	servers[0].Close() // the shard dies after attach

	res, err := rg.Scatter(context.Background(), parse(t, "SELECT COUNT(*) FROM events"),
		ExecOptions{Workers: 2, AllowDegraded: true})
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if !res.Degraded() || len(res.Failed) != 1 || res.Failed[0] != 0 {
		t.Fatalf("want shard 0 degraded after server kill, got failed=%v", res.Failed)
	}
	wantCovered := rg.Shards()[1].Rows()
	if res.CoveredRows != wantCovered {
		t.Fatalf("covered rows %d, want surviving shard's %d", res.CoveredRows, wantCovered)
	}
	if res.Partial == nil {
		t.Fatal("surviving shard produced no partial")
	}
}

// TestAttachRemoteUnreachableFailsLoudly: an address with no listener
// fails the attach — not the first query.
func TestAttachRemoteUnreachableFailsLoudly(t *testing.T) {
	ev, lg := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 2}, fault.BreakerConfig{})
	h := &testShardHandler{id: 0, tbl: lg.ShardTable(0)}
	srv := httptest.NewServer(h)
	defer srv.Close()
	_, err := AttachRemote(ev.Table, Key{Column: "ev_user", Kind: KeyHash, Count: 2},
		[]string{srv.URL, "http://127.0.0.1:1"}, RemoteOptions{ProbeInterval: -1}, fault.BreakerConfig{})
	if err == nil {
		t.Fatal("attach with an unreachable shard succeeded")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("attach error %v does not say which shard is unreachable", err)
	}
}

// TestRemoteProbeTransitions: the health prober reports probe_down when a
// server dies and probe_up when it returns, and GET-facing Health carries
// the probe latency and liveness.
func TestRemoteProbeTransitions(t *testing.T) {
	ev, lg := scatterFixture(t, Key{Column: "ev_user", Kind: KeyHash, Count: 1}, fault.BreakerConfig{})
	h := &testShardHandler{id: 0, tbl: lg.ShardTable(0)}
	srv := httptest.NewServer(h)
	defer srv.Close()
	rg, err := AttachRemote(ev.Table, Key{Column: "ev_user", Kind: KeyHash, Count: 1}, []string{srv.URL},
		RemoteOptions{ProbeInterval: -1}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rg.Close()
	var events []Event
	var mu sync.Mutex
	rg.SetObserver(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	rs := rg.Shards()[0].(*RemoteShard)
	hs := rs.Health()
	if !hs.Alive || hs.Kind != "remote" || hs.Addr == "" || hs.ProbeLatencyMS <= 0 {
		t.Fatalf("post-attach health incomplete: %+v", hs)
	}

	srv.CloseClientConnections()
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if err := rs.probeOnce(ctx); err == nil {
		t.Fatal("probe of a dead server succeeded")
	}
	cancel()
	if rs.Health().Alive {
		t.Fatal("shard still alive after failed probe")
	}
	mu.Lock()
	var downs int
	for _, e := range events {
		if e.Type == "probe_down" {
			downs++
		}
	}
	mu.Unlock()
	if downs != 1 {
		t.Fatalf("probe_down fired %d times, want exactly once (edge-triggered)", downs)
	}
}

// TestRemoteRebuildRoundTrip: Rebuild travels the wire and updates the
// client's sample bookkeeping.
func TestRemoteRebuildRoundTrip(t *testing.T) {
	_, _, rg, _ := remoteFixture(t, 2, RemoteOptions{ProbeInterval: -1, HedgeDelay: -1})
	if err := rg.BuildSamples(0.5, 42); err != nil {
		t.Fatalf("remote BuildSamples: %v", err)
	}
	for _, s := range rg.Shards() {
		h := s.Health()
		if h.SampleRows <= 0 || !h.SampleFresh {
			t.Fatalf("shard %d sample bookkeeping not updated: %+v", h.ID, h)
		}
	}
}
