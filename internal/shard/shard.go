// Package shard partitions a table into independent shards and executes
// aggregate queries over them scatter-gather: each shard runs the query's
// aggregate subtree against its own rows (and its own independently seeded
// sample), returning a mergeable partial state; the gather step folds the
// partials in shard order — which is exactly lossless stratified
// composition of the per-shard Horvitz–Thompson estimators — and finalizes
// once. Each shard fails, degrades, and recovers alone: a per-shard fault
// point and circuit breaker contain one bad shard's blast radius to its
// own stratum, and the gather step extrapolates the survivors honestly
// when the sharding key makes that statistically sound.
//
// The Shard interface is deliberately narrow (Scan/Estimate/Rebuild/
// Health) so the in-process implementation here can later be joined by a
// network transport without touching the scatter executor.
package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/storage"
)

// KeyKind selects how rows are routed to shards.
type KeyKind uint8

// Sharding key kinds.
const (
	// KeyHash routes each row by a hash of its key value: rows are spread
	// uniformly, so any subset of shards is an unbiased window on the
	// table and lost shards can be extrapolated over.
	KeyHash KeyKind = iota
	// KeyRange routes each row by its key's position among quantile cut
	// points computed at partition time: shards hold contiguous key
	// ranges, enabling shard pruning for range predicates — but a lost
	// shard is a systematic gap that must never be extrapolated over.
	KeyRange
)

// String names the kind.
func (k KeyKind) String() string {
	if k == KeyRange {
		return "range"
	}
	return "hash"
}

// ParseKeyKind parses "hash" or "range".
func ParseKeyKind(s string) (KeyKind, error) {
	switch s {
	case "hash", "":
		return KeyHash, nil
	case "range":
		return KeyRange, nil
	}
	return KeyHash, fmt.Errorf("shard: unknown key kind %q (want hash or range)", s)
}

// Key declares how a table is partitioned.
type Key struct {
	// Column is the sharding key column. Optional when Count == 1 (a
	// single shard holds everything and needs no routing).
	Column string
	// Kind selects hash or range routing.
	Kind KeyKind
	// Count is the number of shards (>= 1).
	Count int
}

// String renders the key for diagnostics.
func (k Key) String() string {
	if k.Count <= 1 {
		return "single"
	}
	return fmt.Sprintf("%s(%s)/%d", k.Kind, k.Column, k.Count)
}

// Health is one shard's liveness summary.
type Health struct {
	ID   int `json:"id"`
	Rows int `json:"rows"`
	// Open reports whether the shard's circuit breaker currently rejects
	// traffic.
	Open bool `json:"open"`
	// Trips is how many times the breaker has tripped since creation.
	Trips int64 `json:"trips"`
	// SampleRows is the size of the shard's materialized sample (0 when
	// none has been built).
	SampleRows int `json:"sample_rows"`
	// SampleFresh reports whether the materialized sample was built at the
	// shard's current version (vacuously false when none exists).
	SampleFresh bool `json:"sample_fresh"`
}

// Shard is one independent partition of a table. Implementations must be
// safe for concurrent Estimate calls; the in-process LocalShard is the
// only implementation today, with the interface sized so a network
// transport can slot in behind the same scatter executor later.
type Shard interface {
	// ID is the shard's index within its group.
	ID() int
	// Rows is the shard's current population size.
	Rows() int
	// Scan returns the shard's table for planning and scanning.
	Scan() *storage.Table
	// Estimate executes the plan's aggregate subtree against this shard
	// and returns the mergeable partial state.
	Estimate(ctx context.Context, p plan.Node, workers int) (*exec.AggPartial, error)
	// Rebuild (re)materializes the shard's own uniform sample at the given
	// rate, with its seed derived per shard so cross-shard samples stay
	// independent.
	Rebuild(rate float64, seed int64) error
	// Health reports the shard's population and containment state.
	Health() Health
}

// LocalShard is the in-process Shard: a slice of the base table held as
// its own *storage.Table, with a per-shard fault injection point and an
// optionally materialized per-shard sample.
type LocalShard struct {
	id    int
	table *storage.Table
	point *fault.Point

	mu      sync.Mutex
	smp     *sample.StratifiedResult
	smpSeed int64
	// minKey/maxKey bound the observed shard-key values (range sharding
	// only); used by the scatter executor to prune shards that cannot
	// contain rows matching a range predicate on the key.
	minKey, maxKey storage.Value
	hasBounds      bool
}

func newLocalShard(id int, table *storage.Table) *LocalShard {
	return &LocalShard{
		id:    id,
		table: table,
		point: fault.NewPoint(fmt.Sprintf("shard.estimate.%d", id),
			"per-shard estimate execution (scatter fan-out)"),
	}
}

// ID implements Shard.
func (s *LocalShard) ID() int { return s.id }

// Rows implements Shard.
func (s *LocalShard) Rows() int { return s.table.NumRows() }

// Scan implements Shard.
func (s *LocalShard) Scan() *storage.Table { return s.table }

// Estimate implements Shard.
func (s *LocalShard) Estimate(ctx context.Context, p plan.Node, workers int) (*exec.AggPartial, error) {
	if err := s.point.Inject(); err != nil {
		return nil, err
	}
	return exec.RunAggPartialContext(ctx, p, workers)
}

// Rebuild implements Shard.
func (s *LocalShard) Rebuild(rate float64, seed int64) error {
	res, err := sample.BuildUniformTable(s.table, rate, DeriveSeed(seed, s.id),
		fmt.Sprintf("%s__sample", s.table.Name()))
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.smp = res
	s.smpSeed = seed
	s.mu.Unlock()
	return nil
}

// Sample returns the shard's materialized sample, or nil.
func (s *LocalShard) Sample() *sample.StratifiedResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.smp
}

// Health implements Shard. Breaker state is stamped on by the owning
// Group, which holds the breakers.
func (s *LocalShard) Health() Health {
	h := Health{ID: s.id, Rows: s.table.NumRows()}
	s.mu.Lock()
	if s.smp != nil {
		h.SampleRows = s.smp.SampleRows
		h.SampleFresh = s.smp.BuildVersion == s.table.Version()
	}
	s.mu.Unlock()
	return h
}

// bounds returns the observed [min, max] of the shard key, if tracked.
func (s *LocalShard) bounds() (lo, hi storage.Value, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.minKey, s.maxKey, s.hasBounds
}

func (s *LocalShard) extendBounds(v storage.Value) {
	if v.IsNull() {
		return
	}
	s.mu.Lock()
	if !s.hasBounds {
		s.minKey, s.maxKey, s.hasBounds = v, v, true
	} else {
		if v.Compare(s.minKey) < 0 {
			s.minKey = v
		}
		if v.Compare(s.maxKey) > 0 {
			s.maxKey = v
		}
	}
	s.mu.Unlock()
}

// DeriveSeed maps a query- or build-level seed to a shard-local one.
// Shard 0 keeps the seed unchanged so a single-shard group reproduces the
// unsharded engine bit for bit; other shards get a splitmix64-mixed seed,
// making sampling decisions independent across shards. Independence is
// what keeps composed CIs honest: with a shared seed, shards would make
// correlated inclusion decisions at equal local row indices, and the
// cross-shard covariance the stratified composition assumes away would be
// nonzero.
func DeriveSeed(seed int64, shardID int) int64 {
	if shardID == 0 {
		return seed
	}
	x := uint64(seed) ^ (uint64(shardID) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// hashRoute assigns a key value to one of n hash shards. FNV-1a over the
// value's canonical group key, finished with splitmix64 so consecutive
// integer keys don't land in consecutive shards.
func hashRoute(v storage.Value, n int) int {
	if v.IsNull() {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(v.GroupKey()) {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}
