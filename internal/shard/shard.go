// Package shard partitions a table into independent shards and executes
// aggregate queries over them scatter-gather: each shard runs the query's
// aggregate subtree against its own rows (and its own independently seeded
// sample), returning a mergeable partial state; the gather step folds the
// partials in shard order — which is exactly lossless stratified
// composition of the per-shard Horvitz–Thompson estimators — and finalizes
// once. Each shard fails, degrades, and recovers alone: a per-shard fault
// point and circuit breaker contain one bad shard's blast radius to its
// own stratum, and the gather step extrapolates the survivors honestly
// when the sharding key makes that statistically sound.
//
// Two implementations satisfy the Shard interface: LocalShard holds its
// rows in-process, and RemoteShard speaks the versioned wire schema to a
// shard-server process over HTTP, wrapped in a robustness envelope
// (deadlines, deterministic retries, hedged requests, health probing).
// The scatter executor is identical over both.
package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// KeyKind selects how rows are routed to shards.
type KeyKind uint8

// Sharding key kinds.
const (
	// KeyHash routes each row by a hash of its key value: rows are spread
	// uniformly, so any subset of shards is an unbiased window on the
	// table and lost shards can be extrapolated over.
	KeyHash KeyKind = iota
	// KeyRange routes each row by its key's position among quantile cut
	// points computed at partition time: shards hold contiguous key
	// ranges, enabling shard pruning for range predicates — but a lost
	// shard is a systematic gap that must never be extrapolated over.
	KeyRange
)

// String names the kind.
func (k KeyKind) String() string {
	if k == KeyRange {
		return "range"
	}
	return "hash"
}

// ParseKeyKind parses "hash" or "range".
func ParseKeyKind(s string) (KeyKind, error) {
	switch s {
	case "hash", "":
		return KeyHash, nil
	case "range":
		return KeyRange, nil
	}
	return KeyHash, fmt.Errorf("shard: unknown key kind %q (want hash or range)", s)
}

// Key declares how a table is partitioned.
type Key struct {
	// Column is the sharding key column. Optional when Count == 1 (a
	// single shard holds everything and needs no routing).
	Column string
	// Kind selects hash or range routing.
	Kind KeyKind
	// Count is the number of shards (>= 1).
	Count int
}

// String renders the key for diagnostics.
func (k Key) String() string {
	if k.Count <= 1 {
		return "single"
	}
	return fmt.Sprintf("%s(%s)/%d", k.Kind, k.Column, k.Count)
}

// Health is one shard's liveness summary.
type Health struct {
	ID int `json:"id"`
	// Kind is "local" (in-process) or "remote".
	Kind string `json:"kind"`
	// Addr is the remote shard server's base URL ("" for local shards).
	Addr string `json:"addr,omitempty"`
	Rows int    `json:"rows"`
	// Open reports whether the shard's circuit breaker currently rejects
	// traffic.
	Open bool `json:"open"`
	// Trips is how many times the breaker has tripped since creation.
	Trips int64 `json:"trips"`
	// SampleRows is the size of the shard's materialized sample (0 when
	// none has been built).
	SampleRows int `json:"sample_rows"`
	// SampleFresh reports whether the materialized sample was built at the
	// shard's current version (vacuously false when none exists).
	SampleFresh bool `json:"sample_fresh"`
	// Alive is the last health probe's verdict (always true for local
	// shards, which cannot be partitioned away from the coordinator).
	Alive bool `json:"alive"`
	// ProbeLatencyMS is the last successful health probe's round trip in
	// milliseconds (0 for local shards, or before the first probe).
	ProbeLatencyMS float64 `json:"probe_latency_ms,omitempty"`
	// Retries / Hedges / HedgeWins count the remote envelope's activity
	// since attach (0 for local shards).
	Retries   int64 `json:"retries,omitempty"`
	Hedges    int64 `json:"hedges,omitempty"`
	HedgeWins int64 `json:"hedge_wins,omitempty"`
}

// Query is the executable unit a shard runs: the statement (scatter
// executes its aggregate subtree) plus the sampler spec to push onto the
// shard's scans. The spec's Seed and Rate are already shard-resolved by
// the scatter executor — seeds derived per shard, rates Neyman-allocated
// when a contract run asks for it — so local and remote shards make
// byte-identical sampling decisions. A nil Sample runs exact (any
// statement-level TABLESAMPLE is cleared, matching the exact engine).
type Query struct {
	Stmt   *sqlparse.SelectStmt
	Sample *sample.Spec
}

// Shard is one independent partition of a table. Implementations must be
// safe for concurrent Estimate calls. LocalShard executes in-process;
// RemoteShard forwards to a shard-server over the versioned wire schema.
// The scatter executor treats both identically.
type Shard interface {
	// ID is the shard's index within its group.
	ID() int
	// Kind is "local" or "remote".
	Kind() string
	// Rows is the shard's current population size (last reported size for
	// remote shards).
	Rows() int
	// Estimate executes the query's aggregate subtree against this shard
	// and returns the mergeable partial state.
	Estimate(ctx context.Context, q Query, workers int) (*exec.AggPartial, error)
	// Rebuild (re)materializes the shard's own uniform sample at the given
	// rate. The seed is already shard-derived by the caller (see
	// DeriveSeed), keeping cross-shard samples independent.
	Rebuild(rate float64, seed int64) error
	// Health reports the shard's population and containment state.
	Health() Health
	// Bounds returns the observed [min, max] of the shard key when the
	// shard tracks it (range-sharded local shards). ok == false disables
	// range pruning for this shard, which is always safe — a shard that
	// cannot prove emptiness simply runs.
	Bounds() (lo, hi storage.Value, ok bool)
}

// LocalShard is the in-process Shard: a slice of the base table held as
// its own *storage.Table, with a per-shard fault injection point and an
// optionally materialized per-shard sample.
type LocalShard struct {
	id    int
	table *storage.Table
	point *fault.Point

	mu      sync.Mutex
	smp     *sample.StratifiedResult
	smpSeed int64
	// minKey/maxKey bound the observed shard-key values (range sharding
	// only); used by the scatter executor to prune shards that cannot
	// contain rows matching a range predicate on the key.
	minKey, maxKey storage.Value
	hasBounds      bool
}

func newLocalShard(id int, table *storage.Table) *LocalShard {
	return &LocalShard{
		id:    id,
		table: table,
		point: fault.NewPoint(fmt.Sprintf("shard.estimate.%d", id),
			"per-shard estimate execution (scatter fan-out)"),
	}
}

// ID implements Shard.
func (s *LocalShard) ID() int { return s.id }

// Kind implements Shard.
func (s *LocalShard) Kind() string { return "local" }

// Rows implements Shard.
func (s *LocalShard) Rows() int { return s.table.NumRows() }

// Scan returns the shard's table for planning and scanning (local shards
// only; remote shards hold their rows in another process).
func (s *LocalShard) Scan() *storage.Table { return s.table }

// Estimate implements Shard.
func (s *LocalShard) Estimate(ctx context.Context, q Query, workers int) (*exec.AggPartial, error) {
	if err := s.point.Inject(); err != nil {
		return nil, err
	}
	p, err := BuildShardQueryPlan(q, s.table)
	if err != nil {
		return nil, err
	}
	return exec.RunAggPartialContext(ctx, p, workers)
}

// Rebuild implements Shard. The seed arrives already shard-derived.
func (s *LocalShard) Rebuild(rate float64, seed int64) error {
	res, err := sample.BuildUniformTable(s.table, rate, seed,
		fmt.Sprintf("%s__sample", s.table.Name()))
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.smp = res
	s.smpSeed = seed
	s.mu.Unlock()
	return nil
}

// Sample returns the shard's materialized sample, or nil.
func (s *LocalShard) Sample() *sample.StratifiedResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.smp
}

// Health implements Shard. Breaker state is stamped on by the owning
// Group, which holds the breakers.
func (s *LocalShard) Health() Health {
	h := Health{ID: s.id, Kind: "local", Rows: s.table.NumRows(), Alive: true}
	s.mu.Lock()
	if s.smp != nil {
		h.SampleRows = s.smp.SampleRows
		h.SampleFresh = s.smp.BuildVersion == s.table.Version()
	}
	s.mu.Unlock()
	return h
}

// Bounds implements Shard: the observed [min, max] of the shard key, if
// tracked.
func (s *LocalShard) Bounds() (lo, hi storage.Value, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.minKey, s.maxKey, s.hasBounds
}

func (s *LocalShard) extendBounds(v storage.Value) {
	if v.IsNull() {
		return
	}
	s.mu.Lock()
	if !s.hasBounds {
		s.minKey, s.maxKey, s.hasBounds = v, v, true
	} else {
		if v.Compare(s.minKey) < 0 {
			s.minKey = v
		}
		if v.Compare(s.maxKey) > 0 {
			s.maxKey = v
		}
	}
	s.mu.Unlock()
}

// buildPlanMu serializes concurrent plan builds over a shared statement:
// plan.Build assigns aggregate Slot numbers on the AST as a side effect,
// and scatter legs all plan from the scatter's one statement. The writes
// are idempotent, but idempotent data races are still data races.
var buildPlanMu sync.Mutex

// BuildShardQueryPlan builds q's plan against a shard's table. The table
// is registered in a private catalog under the statement's FROM name, so
// the statement resolves unchanged, and q.Sample (already shard-resolved)
// is stamped onto every scan; nil Sample clears samplers, matching the
// exact engine. LocalShard and the shard-server estimate handler share
// this, so a remote shard executes exactly the plan its local twin would.
func BuildShardQueryPlan(q Query, t *storage.Table) (plan.Node, error) {
	if q.Stmt == nil || q.Stmt.From.Name == "" {
		return nil, fmt.Errorf("shard: query has no FROM table")
	}
	cat := storage.NewCatalog()
	if err := cat.AddAs(q.Stmt.From.Name, t); err != nil {
		return nil, err
	}
	buildPlanMu.Lock()
	p, err := plan.Build(q.Stmt, cat)
	buildPlanMu.Unlock()
	if err != nil {
		return nil, err
	}
	if q.Sample == nil {
		plan.ClearSamplers(p)
		return p, nil
	}
	spec := *q.Sample
	for _, s := range plan.Scans(p) {
		s.Sample = &spec
	}
	return p, nil
}

// DeriveSeed maps a query- or build-level seed to a shard-local one.
// Shard 0 keeps the seed unchanged so a single-shard group reproduces the
// unsharded engine bit for bit; other shards get a splitmix64-mixed seed,
// making sampling decisions independent across shards. Independence is
// what keeps composed CIs honest: with a shared seed, shards would make
// correlated inclusion decisions at equal local row indices, and the
// cross-shard covariance the stratified composition assumes away would be
// nonzero.
func DeriveSeed(seed int64, shardID int) int64 {
	if shardID == 0 {
		return seed
	}
	x := uint64(seed) ^ (uint64(shardID) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// hashRoute assigns a key value to one of n hash shards. FNV-1a over the
// value's canonical group key, finished with splitmix64 so consecutive
// integer keys don't land in consecutive shards.
func hashRoute(v storage.Value, n int) int {
	if v.IsNull() {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(v.GroupKey()) {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}
