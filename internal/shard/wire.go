package shard

// Wire schema for the remote-shard RPC seam. Three endpoints, all
// JSON-over-HTTP, all idempotent (safe to retry and to hedge):
//
//	POST /shard/estimate — run a query's aggregate subtree, return the
//	  serialized exec.AggPartial (its own versioned wire schema).
//	POST /shard/rebuild  — (re)materialize the shard's uniform sample at
//	  a rate and an already-derived seed; rebuilding twice with the same
//	  arguments yields the same sample.
//	GET  /shard/health   — population and sample freshness.
//
// Every request and response carries a schema version; either side
// refuses an unknown version loudly rather than guessing. The request
// types live here (not in internal/server) so the client and the server
// share one definition without an import cycle: server imports shard,
// never the reverse.

import (
	"encoding/json"

	"repro/internal/sample"
)

// WireVersion is the current RPC schema version.
const WireVersion = 1

// EstimateRequest asks a shard server to execute the statement's
// aggregate subtree over its partition. Sample (when present) is already
// shard-resolved: Seed derived via DeriveSeed and Rate possibly
// Neyman-overridden, so the server stamps it onto its scans verbatim.
type EstimateRequest struct {
	V       int          `json:"v"`
	Table   string       `json:"table"`
	SQL     string       `json:"sql"`
	Sample  *sample.Spec `json:"sample,omitempty"`
	Workers int          `json:"workers,omitempty"`
}

// EstimateResponse carries the serialized partial state back.
type EstimateResponse struct {
	V       int `json:"v"`
	ShardID int `json:"shard_id"`
	// Rows is the shard's population size — the gather step's coverage
	// accounting (and honest extrapolation) depends on it.
	Rows int `json:"rows"`
	// TraceID echoes the trace ID parsed from the request's traceparent
	// header, proving context propagation across the process boundary.
	TraceID string `json:"trace_id,omitempty"`
	// Partial is the exec.AggPartial wire form (itself versioned).
	Partial json.RawMessage `json:"partial"`
}

// RebuildRequest (re)materializes the shard's uniform sample. Seed is
// already shard-derived by the coordinator (see DeriveSeed), so local and
// remote shards build byte-identical samples.
type RebuildRequest struct {
	V     int     `json:"v"`
	Table string  `json:"table"`
	Rate  float64 `json:"rate"`
	Seed  int64   `json:"seed"`
}

// RebuildResponse reports the materialized sample size.
type RebuildResponse struct {
	V          int `json:"v"`
	SampleRows int `json:"sample_rows"`
}

// HealthWire is the shard server's health report.
type HealthWire struct {
	V           int    `json:"v"`
	ShardID     int    `json:"shard_id"`
	Table       string `json:"table"`
	Rows        int    `json:"rows"`
	SampleRows  int    `json:"sample_rows"`
	SampleFresh bool   `json:"sample_fresh"`
}

// WireError is the body of a non-200 response.
type WireError struct {
	Error string `json:"error"`
}
