package telemetry

import (
	"strings"
	"testing"
	"time"
)

// edgesFor fabricates a WindowEdges func returning a fixed pair.
func edgesFor(old, latest Sample) func(time.Duration) (Sample, Sample, bool) {
	return func(time.Duration) (Sample, Sample, bool) { return old, latest, true }
}

func newTestSLO(objs []Objective, edges func(time.Duration) (Sample, Sample, bool), onFast func(ObjectiveStatus)) *SLO {
	e := NewSLO(NewStore(StoreConfig{Collect: func() Sample { return Sample{} }}), objs, onFast)
	e.store = &SLOStoreRef{Edges: edges}
	return e
}

func TestParseObjectives(t *testing.T) {
	cfg := `[
	  {"name": "lat", "kind": "latency", "hist": "query_latency_ms",
	   "threshold_ms": 500, "target": 0.99, "fast_window": "2m"},
	  {"name": "cov", "kind": "ratio_floor", "good": "a_total", "total": "b_total", "target": 0.9}
	]`
	objs, err := ParseObjectives([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives", len(objs))
	}
	if time.Duration(objs[0].FastWindow) != 2*time.Minute {
		t.Fatalf("fast_window = %v", objs[0].FastWindow)
	}
	if time.Duration(objs[0].SlowWindow) != time.Hour {
		t.Fatalf("slow_window default = %v", objs[0].SlowWindow)
	}
	if objs[0].FastBurn != 14 {
		t.Fatalf("fast_burn default = %g", objs[0].FastBurn)
	}

	bad := []string{
		`[]`,
		`[{"name": "", "kind": "latency", "hist": "h", "threshold_ms": 1, "target": 0.5}]`,
		`[{"name": "x", "kind": "latency", "target": 0.5}]`,
		`[{"name": "x", "kind": "ratio_floor", "good": "g", "total": "t", "target": 1.5}]`,
		`[{"name": "x", "kind": "nope", "target": 0.5}]`,
		`[{"name": "x", "kind": "ratio_ceiling", "total": "t", "target": 0.5}]`,
	}
	for _, b := range bad {
		if _, err := ParseObjectives([]byte(b)); err == nil {
			t.Fatalf("ParseObjectives accepted %s", b)
		}
	}
}

func TestDefaultObjectivesValid(t *testing.T) {
	for _, o := range DefaultObjectives() {
		if err := o.validate(); err != nil {
			t.Errorf("default objective %s invalid: %v", o.Name, err)
		}
	}
}

func TestSLORatioFloorStates(t *testing.T) {
	obj := Objective{Name: "cov", Kind: KindRatioFloor,
		Good: "good_total", Total: "total_total", Target: 0.9, MinEvents: 5}

	mk := func(good, total float64) (Sample, Sample) {
		t0 := time.Unix(1000, 0)
		return Sample{T: t0, Counters: map[string]float64{"good_total": 0, "total_total": 0}},
			Sample{T: t0.Add(5 * time.Minute), Counters: map[string]float64{"good_total": good, "total_total": total}}
	}

	// Too few events: warming.
	old, latest := mk(1, 2)
	st := newTestSLO([]Objective{obj}, edgesFor(old, latest), nil).Evaluate()[0]
	if st.State != "warming" {
		t.Fatalf("state = %s, want warming", st.State)
	}

	// 100% good: ok, full budget.
	old, latest = mk(100, 100)
	st = newTestSLO([]Objective{obj}, edgesFor(old, latest), nil).Evaluate()[0]
	if st.State != "ok" || st.BudgetRemaining != 1 {
		t.Fatalf("healthy: state=%s budget=%g", st.State, st.BudgetRemaining)
	}

	// 85% good against a 0.9 floor: burn = 0.15/0.1 = 1.5 → burning.
	old, latest = mk(85, 100)
	st = newTestSLO([]Objective{obj}, edgesFor(old, latest), nil).Evaluate()[0]
	if st.State != "burning" {
		t.Fatalf("state = %s, want burning (burn=%g)", st.State, st.Fast.Burn)
	}

	// 0% good: burn = 10 < 14 → still burning, not fast_burn.
	old, latest = mk(0, 100)
	st = newTestSLO([]Objective{obj}, edgesFor(old, latest), nil).Evaluate()[0]
	if st.State != "burning" {
		t.Fatalf("state = %s, want burning", st.State)
	}
	if st.BudgetRemaining >= 0 {
		t.Fatalf("budget remaining %g, want negative (overdrawn)", st.BudgetRemaining)
	}
}

func TestSLOFastBurnEdgeTriggered(t *testing.T) {
	// Ceiling 0.05 exceeded massively: 50% bad → burn = 0.5/0.05 = 10…
	// use a tighter ceiling so burn clears 14: 0.02 → burn 25.
	obj := Objective{Name: "deg", Kind: KindRatioCeiling,
		Bad: "bad_total", Total: "total_total", Target: 0.02}
	t0 := time.Unix(1000, 0)
	old := Sample{T: t0, Counters: map[string]float64{"bad_total": 0, "total_total": 0}}
	latest := Sample{T: t0.Add(5 * time.Minute), Counters: map[string]float64{"bad_total": 50, "total_total": 100}}

	var fired []string
	e := newTestSLO([]Objective{obj}, edgesFor(old, latest),
		func(st ObjectiveStatus) { fired = append(fired, st.Objective.Name) })

	st := e.Evaluate()[0]
	if st.State != "fast_burn" {
		t.Fatalf("state = %s, want fast_burn (fast burn=%g slow burn=%g)", st.State, st.Fast.Burn, st.Slow.Burn)
	}
	e.Evaluate()
	e.Evaluate()
	if len(fired) != 1 {
		t.Fatalf("fast-burn callback fired %d times, want 1 (edge-triggered)", len(fired))
	}

	// Recovery then relapse fires again.
	healthy := Sample{T: t0.Add(10 * time.Minute), Counters: map[string]float64{"bad_total": 50, "total_total": 10100}}
	e.store = &SLOStoreRef{Edges: edgesFor(old, healthy)}
	if st := e.Evaluate()[0]; st.State == "fast_burn" {
		t.Fatalf("still fast_burn after recovery (burn=%g)", st.Fast.Burn)
	}
	e.store = &SLOStoreRef{Edges: edgesFor(old, latest)}
	e.Evaluate()
	if len(fired) != 2 {
		t.Fatalf("relapse: callback fired %d times total, want 2", len(fired))
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	// Latency histogram: threshold 100ms, 90 of 100 obs ≤ 100.
	obj := Objective{Name: "lat", Kind: KindLatency,
		Hist: "query_latency_ms", ThresholdMS: 100, Target: 0.95}
	t0 := time.Unix(1000, 0)
	old := Sample{T: t0, Hists: map[string]Hist{
		`query_latency_ms{technique="exact"}`: {Bounds: []float64{100, 500}, Cum: []float64{0, 0, 0}},
	}}
	latest := Sample{T: t0.Add(5 * time.Minute), Hists: map[string]Hist{
		`query_latency_ms{technique="exact"}`: {Bounds: []float64{100, 500}, Cum: []float64{90, 100, 100}, Count: 100},
	}}
	st := newTestSLO([]Objective{obj}, edgesFor(old, latest), nil).Evaluate()[0]
	if st.Fast.Events != 100 {
		t.Fatalf("events = %g, want 100", st.Fast.Events)
	}
	if st.Fast.GoodRatio != 0.9 {
		t.Fatalf("good ratio = %g, want 0.9", st.Fast.GoodRatio)
	}
	// Burn = 0.1/0.05 = 2 → burning.
	if st.State != "burning" {
		t.Fatalf("state = %s, want burning", st.State)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"90s"`)); err != nil || time.Duration(d) != 90*time.Second {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`30`)); err != nil || time.Duration(d) != 30*time.Second {
		t.Fatalf("numeric form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`"soon"`)); err == nil {
		t.Fatal("accepted bad duration")
	}
	b, err := Duration(5 * time.Minute).MarshalJSON()
	if err != nil || !strings.Contains(string(b), "5m") {
		t.Fatalf("marshal: %s %v", b, err)
	}
}
