package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// histFromObs builds a cumulative Hist over the given bounds from raw
// observations — the same bucketing the server's histogram applies.
func histFromObs(bounds []float64, obs []float64) Hist {
	h := Hist{Bounds: bounds, Cum: make([]float64, len(bounds)+1)}
	for _, v := range obs {
		h.Sum += v
		h.Count++
		for i, b := range bounds {
			if v <= b {
				h.Cum[i]++
			}
		}
	}
	h.Cum[len(bounds)] = h.Count
	return h
}

func TestHistQuantileEmpty(t *testing.T) {
	if got := HistQuantile(Hist{}, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
	h := Hist{Bounds: []float64{1}, Cum: []float64{0, 0}}
	if got := HistQuantile(h, 0.5); !math.IsNaN(got) {
		t.Fatalf("zero-count histogram quantile = %g, want NaN", got)
	}
}

func TestHistQuantileExactAtBound(t *testing.T) {
	// 10 observations, all cumulative mass exactly at bounds: rank q=0.4
	// lands exactly on Cum[0]=4 → must return Bounds[0] exactly.
	h := Hist{Bounds: []float64{10, 20, 30}, Cum: []float64{4, 8, 10, 10}, Count: 10}
	if got := HistQuantile(h, 0.4); got != 10 {
		t.Fatalf("exact-at-bound q0.4 = %g, want 10", got)
	}
	if got := HistQuantile(h, 0.8); got != 20 {
		t.Fatalf("exact-at-bound q0.8 = %g, want 20", got)
	}
	if got := HistQuantile(h, 1); got != 30 {
		t.Fatalf("q1.0 = %g, want 30", got)
	}
}

func TestHistQuantileSingleBucket(t *testing.T) {
	// All mass in one bucket [0, 100]: quantiles interpolate linearly
	// from zero.
	h := Hist{Bounds: []float64{100}, Cum: []float64{10, 10}, Count: 10}
	if got := HistQuantile(h, 0.5); got != 50 {
		t.Fatalf("single-bucket median = %g, want 50", got)
	}
	if got := HistQuantile(h, 0.1); got != 10 {
		t.Fatalf("single-bucket q0.1 = %g, want 10", got)
	}
}

func TestHistQuantileInfBucket(t *testing.T) {
	// Half the mass beyond the last finite bound: the +Inf bucket cannot
	// be resolved, so quantiles inside it clamp to the last finite bound.
	h := Hist{Bounds: []float64{10, 100}, Cum: []float64{2, 5, 10}, Count: 10}
	if got := HistQuantile(h, 0.99); got != 100 {
		t.Fatalf("+Inf bucket q0.99 = %g, want 100 (last finite bound)", got)
	}
}

func TestHistQuantileClampsQ(t *testing.T) {
	h := Hist{Bounds: []float64{100}, Cum: []float64{10, 10}, Count: 10}
	if got := HistQuantile(h, -0.5); got != 0 {
		t.Fatalf("q<0 = %g, want 0", got)
	}
	if got := HistQuantile(h, 2); got != 100 {
		t.Fatalf("q>1 = %g, want 100", got)
	}
	if got := HistQuantile(h, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("q=NaN = %g, want NaN", got)
	}
}

// TestHistQuantileProperty compares the interpolated estimate against a
// brute-force quantile of the raw observations: the estimate must land
// within one bucket width of the truth, for random observation sets and
// random quantiles.
func TestHistQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
	for trial := 0; trial < 50; trial++ {
		n := 50 + rng.Intn(500)
		obs := make([]float64, n)
		for i := range obs {
			// Log-uniform over (0.1, ~900): exercises every bucket.
			obs[i] = 0.1 * math.Pow(10, rng.Float64()*3.96)
		}
		h := histFromObs(bounds, obs)
		sorted := append([]float64(nil), obs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			est := HistQuantile(h, q)
			idx := int(q * float64(n))
			if idx >= n {
				idx = n - 1
			}
			truth := sorted[idx]
			// Locate truth's bucket; est must be within that bucket's
			// span (linear interpolation cannot leave the bucket).
			lo, hi := 0.0, bounds[len(bounds)-1]
			for i, b := range bounds {
				if truth <= b {
					hi = b
					if i > 0 {
						lo = bounds[i-1]
					} else {
						lo = 0
					}
					break
				}
			}
			if est < lo-1e-9 || est > hi+1e-9 {
				t.Fatalf("trial %d q=%g: estimate %g outside truth bucket [%g, %g] (truth %g)",
					trial, q, est, lo, hi, truth)
			}
		}
	}
}

func TestHistCumAt(t *testing.T) {
	// 10 obs: 4 in (0,10], 4 in (10,20], 2 in +Inf.
	h := Hist{Bounds: []float64{10, 20}, Cum: []float64{4, 8, 10}, Count: 10}
	if got := HistCumAt(h, 10); got != 4 {
		t.Fatalf("CumAt(10) = %g, want 4", got)
	}
	if got := HistCumAt(h, 15); got != 6 {
		t.Fatalf("CumAt(15) = %g, want 6 (linear)", got)
	}
	if got := HistCumAt(h, 5); got != 2 {
		t.Fatalf("CumAt(5) = %g, want 2", got)
	}
	// Beyond the last finite bound only finite buckets count as good.
	if got := HistCumAt(h, 1e9); got != 8 {
		t.Fatalf("CumAt(1e9) = %g, want 8", got)
	}
	if got := HistCumAt(Hist{}, 5); got != 0 {
		t.Fatalf("CumAt empty = %g, want 0", got)
	}
}
