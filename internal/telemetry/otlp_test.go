package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

func buildProfile(t *testing.T) *trace.Profile {
	t.Helper()
	tr := trace.New("query")
	child := tr.Root().StartChild("engine exact")
	child.AddRows(100)
	child.SetAttr("workers", "4")
	child.End()
	return tr.Profile()
}

func TestFlattenProfile(t *testing.T) {
	p := buildProfile(t)
	spans := FlattenProfile(p)
	if len(spans) != 2 {
		t.Fatalf("flattened %d spans, want 2", len(spans))
	}
	root, child := spans[0], spans[1]
	if root.Kind != 2 || child.Kind != 1 {
		t.Fatalf("kinds = %d, %d; want 2 (server), 1 (internal)", root.Kind, child.Kind)
	}
	if root.TraceID != child.TraceID {
		t.Fatal("trace IDs differ within one query")
	}
	if len(root.TraceID) != 32 || len(root.SpanID) != 16 {
		t.Fatalf("ID widths: trace %d span %d", len(root.TraceID), len(root.SpanID))
	}
	if child.ParentSpanID != root.SpanID {
		t.Fatalf("child parent = %s, want root span %s", child.ParentSpanID, root.SpanID)
	}
	if child.StartTimeUnixNano == "" || child.StartTimeUnixNano == "0" {
		t.Fatal("child missing start time")
	}
	var rowsOut, workers string
	for _, a := range child.Attributes {
		switch a.Key {
		case "rows.out":
			rowsOut = a.Value.StringValue
		case "workers":
			workers = a.Value.StringValue
		}
	}
	if rowsOut != "100" || workers != "4" {
		t.Fatalf("attrs rows.out=%q workers=%q", rowsOut, workers)
	}
}

func TestFlattenSkipsIdentityless(t *testing.T) {
	// A hand-built profile with no IDs must be skipped, not exported with
	// empty IDs.
	p := &trace.Profile{Name: "anon", DurationMS: 1}
	if spans := FlattenProfile(p); len(spans) != 0 {
		t.Fatalf("exported %d identity-less spans", len(spans))
	}
}

func TestSpanExporterRingAndFeed(t *testing.T) {
	e := NewSpanExporter("aqpd-test", 3)
	for i := 0; i < 4; i++ {
		e.Export(buildProfile(t)) // 2 spans each
	}
	spans := e.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring retained %d spans, want 3", len(spans))
	}

	feed := e.Feed()
	b, err := json.Marshal(feed)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"resourceSpans"`, `"scopeSpans"`, `"traceId"`, `"spanId"`,
		`"startTimeUnixNano"`, `"service.name"`, `"aqpd-test"`} {
		if !strings.Contains(s, want) {
			t.Errorf("feed JSON missing %s", want)
		}
	}
}

func TestSpanExporterNilSafe(t *testing.T) {
	var e *SpanExporter
	e.Export(nil)
	if e.Spans() != nil {
		t.Fatal("nil exporter returned spans")
	}
	if len(e.Feed().ResourceSpans) != 1 {
		t.Fatal("nil exporter feed malformed")
	}
}
