package telemetry

import (
	"strconv"
	"sync"

	"repro/internal/trace"
)

// OTLP-shaped JSON span export. The types mirror the OTLP/JSON trace
// payload (opentelemetry-proto trace service) closely enough that a
// collector-compatible ingester can read the feed: hex trace/span IDs,
// string-encoded unix-nano timestamps, attribute key/value envelopes.
// There is no OTLP client dependency — the feed is plain marshaled JSON
// served at /debug/spans.

// OTLPValue is an OTLP AnyValue restricted to strings (span attrs are
// strings throughout this repo).
type OTLPValue struct {
	StringValue string `json:"stringValue"`
}

// OTLPAttr is one OTLP attribute.
type OTLPAttr struct {
	Key   string    `json:"key"`
	Value OTLPValue `json:"value"`
}

// OTLPSpan is one exported span.
type OTLPSpan struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	Name         string `json:"name"`
	// Kind: 2 = SPAN_KIND_SERVER (query roots), 1 = SPAN_KIND_INTERNAL.
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []OTLPAttr `json:"attributes,omitempty"`
}

// OTLPFeed is the top-level OTLP/JSON trace payload shape.
type OTLPFeed struct {
	ResourceSpans []OTLPResourceSpans `json:"resourceSpans"`
}

// OTLPResourceSpans groups spans under one resource.
type OTLPResourceSpans struct {
	Resource   OTLPResource     `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// OTLPResource identifies the emitting service.
type OTLPResource struct {
	Attributes []OTLPAttr `json:"attributes,omitempty"`
}

// OTLPScopeSpans groups spans under one instrumentation scope.
type OTLPScopeSpans struct {
	Scope OTLPScope  `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPScope names the instrumentation scope.
type OTLPScope struct {
	Name string `json:"name"`
}

// FlattenProfile converts a span-tree Profile into flat OTLP spans
// (pre-order). Nodes without trace identity (snapshots taken outside a
// tracer) are skipped — OTLP requires valid IDs.
func FlattenProfile(p *trace.Profile) []OTLPSpan {
	var out []OTLPSpan
	flattenInto(p, true, &out)
	return out
}

func flattenInto(p *trace.Profile, root bool, out *[]OTLPSpan) {
	if p == nil {
		return
	}
	if p.TraceID != "" && p.SpanID != "" {
		kind := 1
		if root {
			kind = 2
		}
		start := p.StartUnixNano
		end := start + int64(p.DurationMS*1e6)
		sp := OTLPSpan{
			TraceID:           p.TraceID,
			SpanID:            p.SpanID,
			ParentSpanID:      p.ParentSpanID,
			Name:              p.Name,
			Kind:              kind,
			StartTimeUnixNano: strconv.FormatInt(start, 10),
			EndTimeUnixNano:   strconv.FormatInt(end, 10),
		}
		if p.RowsIn > 0 {
			sp.Attributes = append(sp.Attributes, OTLPAttr{Key: "rows.in", Value: OTLPValue{strconv.FormatInt(p.RowsIn, 10)}})
		}
		if p.RowsOut > 0 {
			sp.Attributes = append(sp.Attributes, OTLPAttr{Key: "rows.out", Value: OTLPValue{strconv.FormatInt(p.RowsOut, 10)}})
		}
		for _, a := range p.Attrs {
			sp.Attributes = append(sp.Attributes, OTLPAttr{Key: a.Key, Value: OTLPValue{a.Value}})
		}
		*out = append(*out, sp)
	}
	for _, c := range p.Children {
		flattenInto(c, false, out)
	}
}

// SpanExporter is a bounded ring of exported spans feeding /debug/spans.
type SpanExporter struct {
	mu   sync.Mutex
	buf  []OTLPSpan
	head int
	n    int

	service string
}

// NewSpanExporter builds an exporter retaining the last capacity spans
// (default 1024) emitted by the named service.
func NewSpanExporter(service string, capacity int) *SpanExporter {
	if capacity <= 0 {
		capacity = 1024
	}
	if service == "" {
		service = "aqpd"
	}
	return &SpanExporter{buf: make([]OTLPSpan, capacity), service: service}
}

// Export flattens one query's profile into the ring.
func (e *SpanExporter) Export(p *trace.Profile) {
	if e == nil || p == nil {
		return
	}
	spans := FlattenProfile(p)
	e.mu.Lock()
	for _, sp := range spans {
		e.buf[e.head] = sp
		e.head = (e.head + 1) % len(e.buf)
		if e.n < len(e.buf) {
			e.n++
		}
	}
	e.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (e *SpanExporter) Spans() []OTLPSpan {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]OTLPSpan, 0, e.n)
	start := e.head - e.n
	if start < 0 {
		start += len(e.buf)
	}
	for i := 0; i < e.n; i++ {
		out = append(out, e.buf[(start+i)%len(e.buf)])
	}
	return out
}

// Feed wraps the retained spans in the OTLP/JSON envelope.
func (e *SpanExporter) Feed() OTLPFeed {
	spans := e.Spans()
	if spans == nil {
		spans = []OTLPSpan{}
	}
	service := "aqpd"
	if e != nil {
		service = e.service
	}
	return OTLPFeed{ResourceSpans: []OTLPResourceSpans{{
		Resource: OTLPResource{Attributes: []OTLPAttr{{Key: "service.name", Value: OTLPValue{service}}}},
		ScopeSpans: []OTLPScopeSpans{{
			Scope: OTLPScope{Name: "repro/internal/trace"},
			Spans: spans,
		}},
	}}}
}
