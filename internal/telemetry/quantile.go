package telemetry

import "math"

// HistQuantile estimates the q-quantile (q in [0, 1]) of the
// observations summarized by a cumulative fixed-bucket histogram, using
// linear interpolation within the bucket that contains the target rank —
// the same estimator Prometheus's histogram_quantile applies.
//
// Conventions:
//   - The first bucket interpolates over [0, Bounds[0]]: every histogram
//     in this system (latencies, relative CI widths, row counts) is
//     non-negative, so zero is the honest lower edge.
//   - A rank landing exactly on a bucket's cumulative count returns that
//     bucket's upper bound exactly.
//   - A rank inside the +Inf bucket returns the largest finite bound —
//     the histogram cannot resolve anything beyond it, and a finite
//     answer keeps burn-rate math well-defined.
//   - An empty histogram (Count == 0 or no buckets) returns NaN.
func HistQuantile(h Hist, q float64) float64 {
	if h.Count <= 0 || len(h.Cum) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * h.Count
	// Find the first bucket whose cumulative count reaches the rank.
	i := 0
	for i < len(h.Cum) && h.Cum[i] < rank {
		i++
	}
	if i >= len(h.Bounds) {
		// +Inf bucket: report the largest finite bound.
		if len(h.Bounds) == 0 {
			return math.NaN()
		}
		return h.Bounds[len(h.Bounds)-1]
	}
	lo := 0.0
	prev := 0.0
	if i > 0 {
		lo = h.Bounds[i-1]
		prev = h.Cum[i-1]
	}
	hi := h.Bounds[i]
	inBucket := h.Cum[i] - prev
	if inBucket <= 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-prev)/inBucket
}

// HistCumAt linearly interpolates the cumulative observation count at
// value v from the histogram's bucket bounds — the inverse direction of
// HistQuantile, used to split a latency histogram into good (≤ v) and
// bad (> v) events for an SLO. Values past the last finite bound count
// only the finite buckets as good: the +Inf bucket's contents are
// indistinguishable from arbitrarily bad.
func HistCumAt(h Hist, v float64) float64 {
	if len(h.Cum) == 0 {
		return 0
	}
	prev := 0.0
	lo := 0.0
	for i, b := range h.Bounds {
		if v < b {
			inBucket := h.Cum[i] - prev
			if b == lo {
				return h.Cum[i]
			}
			return prev + inBucket*(v-lo)/(b-lo)
		}
		prev = h.Cum[i]
		lo = b
	}
	return prev
}
