package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock produces samples with controlled timestamps.
type fakeClock struct {
	t time.Time
	n float64
}

func (c *fakeClock) sample(step time.Duration, perStep float64) Sample {
	c.t = c.t.Add(step)
	c.n += perStep
	return Sample{
		T:        c.t,
		Counters: map[string]float64{"queries_total": c.n},
	}
}

func TestStoreRingWraps(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var next Sample
	s := NewStore(StoreConfig{
		Step:    10 * time.Second,
		Window:  50 * time.Second, // capacity 5
		Collect: func() Sample { return next },
	})
	for i := 0; i < 12; i++ {
		next = clk.sample(10*time.Second, 1)
		s.Snap()
	}
	got := s.Samples()
	if len(got) != 5 {
		t.Fatalf("ring retained %d samples, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i].T.After(got[i-1].T) {
			t.Fatalf("samples out of order at %d: %v !after %v", i, got[i].T, got[i-1].T)
		}
	}
	// The newest sample must be the 12th snap.
	if got[4].Counters["queries_total"] != 12 {
		t.Fatalf("newest sample counter = %g, want 12", got[4].Counters["queries_total"])
	}
}

func TestStoreHistoryWindowAndDownsample(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var next Sample
	s := NewStore(StoreConfig{
		Step:    time.Second,
		Window:  time.Minute,
		Collect: func() Sample { return next },
	})
	for i := 0; i < 30; i++ {
		next = clk.sample(time.Second, 1)
		s.Snap()
	}
	// Trailing 10s window at raw cadence: samples inside (latest-10s, latest].
	h := s.History(10*time.Second, 0)
	if len(h) < 9 || len(h) > 11 {
		t.Fatalf("10s window returned %d samples, want ~10", len(h))
	}
	// Downsample to 5s slots: roughly every 5th sample survives, and each
	// survivor is the newest in its slot (counters only grow).
	d := s.History(30*time.Second, 5*time.Second)
	if len(d) >= len(s.History(30*time.Second, 0)) {
		t.Fatalf("downsample did not reduce: %d", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i].Counters["queries_total"] <= d[i-1].Counters["queries_total"] {
			t.Fatalf("downsampled counters not increasing at %d", i)
		}
	}
}

func TestStoreWindowEdges(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var next Sample
	s := NewStore(StoreConfig{
		Step:    10 * time.Second,
		Window:  10 * time.Minute,
		Collect: func() Sample { return next },
	})
	if _, _, ok := s.WindowEdges(time.Minute); ok {
		t.Fatal("WindowEdges ok with zero samples")
	}
	for i := 0; i < 12; i++ { // spans 110s
		next = clk.sample(10*time.Second, 1)
		s.Snap()
	}
	old, latest, ok := s.WindowEdges(time.Minute)
	if !ok {
		t.Fatal("WindowEdges not ok")
	}
	if gap := latest.T.Sub(old.T); gap < time.Minute {
		t.Fatalf("edge gap %v < requested 1m", gap)
	}
	// A window wider than retention falls back to the oldest sample.
	old2, _, _ := s.WindowEdges(time.Hour)
	if old2.Counters["queries_total"] != 1 {
		t.Fatalf("over-wide window old edge = %g, want oldest (1)", old2.Counters["queries_total"])
	}
}

func TestStoreOnSnapAndTicker(t *testing.T) {
	var seen atomic.Int64
	s := NewStore(StoreConfig{
		Step:    5 * time.Millisecond,
		Window:  time.Second,
		Collect: func() Sample { return Sample{} },
		OnSnap:  func(Sample) { seen.Add(1) },
	})
	s.Start()
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for seen.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := seen.Load(); n < 2 {
		t.Fatalf("ticker produced %d snaps, want >= 2", n)
	}
	s.Close() // idempotent
}

func TestFamilySum(t *testing.T) {
	counters := map[string]float64{
		`queries_total{technique="exact"}`:  3,
		`queries_total{technique="online"}`: 2,
		`queries_totally_different`:         100,
		`audit_covered_total`:               7,
		`audit_missed_total`:                1,
	}
	if got := FamilySum(counters, "queries_total"); got != 5 {
		t.Fatalf("FamilySum labeled = %g, want 5 (prefix guard failed?)", got)
	}
	if got := FamilySum(counters, "audit_covered_total+audit_missed_total"); got != 8 {
		t.Fatalf("FamilySum joined = %g, want 8", got)
	}
	if got := FamilySum(counters, "absent_total"); got != 0 {
		t.Fatalf("FamilySum absent = %g, want 0", got)
	}
}

func TestFamilyHistSumAndDelta(t *testing.T) {
	hists := map[string]Hist{
		`lat_ms{technique="exact"}`:  {Bounds: []float64{1, 10}, Cum: []float64{1, 3, 4}, Sum: 20, Count: 4},
		`lat_ms{technique="online"}`: {Bounds: []float64{1, 10}, Cum: []float64{0, 2, 2}, Sum: 8, Count: 2},
	}
	h, ok := FamilyHistSum(hists, "lat_ms")
	if !ok {
		t.Fatal("FamilyHistSum found nothing")
	}
	if h.Count != 6 || h.Cum[1] != 5 {
		t.Fatalf("merged hist = %+v, want count 6 cum[1] 5", h)
	}
	if _, ok := FamilyHistSum(hists, "other"); ok {
		t.Fatal("FamilyHistSum found a nonexistent family")
	}

	older := Hist{Bounds: []float64{1, 10}, Cum: []float64{1, 2, 3}, Sum: 10, Count: 3}
	newer := Hist{Bounds: []float64{1, 10}, Cum: []float64{2, 5, 7}, Sum: 30, Count: 7}
	d := DeltaHist(older, newer)
	if d.Count != 4 || d.Cum[0] != 1 || d.Cum[1] != 3 || d.Cum[2] != 4 {
		t.Fatalf("delta = %+v", d)
	}
	// Bound mismatch returns the newer snapshot unchanged.
	mismatch := DeltaHist(Hist{Bounds: []float64{5}, Cum: []float64{1, 1}}, newer)
	if mismatch.Count != newer.Count {
		t.Fatalf("mismatch delta = %+v, want newer", mismatch)
	}
}

func TestRate(t *testing.T) {
	t0 := time.Unix(1000, 0)
	older := Sample{T: t0, Counters: map[string]float64{"q_total": 10}}
	newer := Sample{T: t0.Add(10 * time.Second), Counters: map[string]float64{"q_total": 30}}
	if got := Rate(older, newer, "q_total"); got != 2 {
		t.Fatalf("Rate = %g, want 2/s", got)
	}
	if got := Rate(newer, older, "q_total"); got != 0 {
		t.Fatalf("Rate backwards = %g, want 0", got)
	}
}
