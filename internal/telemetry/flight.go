package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// Event is one process event the flight recorder retains alongside
// query records: a fault-point fire, a circuit-breaker transition, or a
// per-shard scatter outcome.
type Event struct {
	T time.Time `json:"t"`
	// Kind is "fault_fire", "breaker", or "shard".
	Kind string `json:"kind"`
	// Name identifies the subject: fault-point name, breaker's engine,
	// or sharded table.
	Name string `json:"name"`
	// Detail carries the specifics: the fired fault kind, the breaker
	// transition ("closed->open"), or the shard outcome ("ok", "fail").
	Detail string `json:"detail,omitempty"`
	// Shard is the shard index for shard events (-1 otherwise).
	Shard int `json:"shard,omitempty"`
	// TraceID, when non-empty, names the query trace the event occurred
	// under; Record attributes such events by identity instead of by
	// time overlap. Process-global events (fault fires, breaker
	// transitions) have none.
	TraceID string `json:"trace_id,omitempty"`
}

// QueryRecord is one query's postmortem record.
type QueryRecord struct {
	Seq     uint64    `json:"seq"`
	Start   time.Time `json:"start"`
	TraceID string    `json:"trace_id,omitempty"`
	SQL     string    `json:"sql"`
	Mode    string    `json:"mode,omitempty"`
	// Fingerprint is the query-shape hash (literal-normalized canonical
	// SQL + query-column-set), correlating this record with its
	// /workload scorecard.
	Fingerprint string `json:"fingerprint,omitempty"`

	Technique    string  `json:"technique,omitempty"`
	Status       int     `json:"status"`
	Err          string  `json:"err,omitempty"`
	LatencyMS    float64 `json:"latency_ms"`
	RowsScanned  int64   `json:"rows_scanned,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	DegradedFrom string  `json:"degraded_from,omitempty"`
	Partial      bool    `json:"partial,omitempty"`
	// ContractVerdict is "met", "missed", or "infeasible" for contract
	// queries ("" otherwise).
	ContractVerdict string `json:"contract_verdict,omitempty"`

	// Keep names why this record was pinned to the always-keep ring:
	// "error", "degraded", "contract_missed", or "slow" ("" = recent
	// ring only).
	Keep string `json:"keep,omitempty"`
	// Events are the process events whose timestamps fall inside this
	// query's execution window — under concurrency an event may be
	// attributed to several overlapping queries, which is the honest
	// reading of a process-global fault.
	Events []Event `json:"events,omitempty"`
	// Spans is the query's full span tree.
	Spans *trace.Profile `json:"spans,omitempty"`
}

// RecorderConfig sizes the flight recorder.
type RecorderConfig struct {
	// Queries is each ring's capacity: the recorder keeps the last
	// Queries queries AND the last Queries notable (errored, degraded,
	// contract-missed, slowest-decile) queries (default 64).
	Queries int
	// Events is the process-event ring capacity (default 4*Queries).
	Events int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if c.Events <= 0 {
		c.Events = 4 * c.Queries
	}
	return c
}

// Recorder is the bounded flight recorder: two query rings (recent and
// notable) plus a process-event ring. All appends are O(1) under one
// mutex; nothing here is on a per-row path.
type Recorder struct {
	cfg RecorderConfig

	mu      sync.Mutex
	seq     uint64
	recent  []QueryRecord // ring
	notable []QueryRecord // ring of always-keep records
	rHead   int
	nHead   int
	rN, nN  int
	events  []Event // ring
	eHead   int
	eN      int
	lats    []float64 // ring of recent latencies for the slow-decile cut
	lHead   int
	lN      int
}

// NewRecorder builds an empty recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:     cfg,
		recent:  make([]QueryRecord, cfg.Queries),
		notable: make([]QueryRecord, cfg.Queries),
		events:  make([]Event, cfg.Events),
		lats:    make([]float64, 128),
	}
}

// AddEvent appends one process event.
func (r *Recorder) AddEvent(ev Event) {
	if r == nil {
		return
	}
	if ev.T.IsZero() {
		ev.T = time.Now()
	}
	r.mu.Lock()
	r.events[r.eHead] = ev
	r.eHead = (r.eHead + 1) % len(r.events)
	if r.eN < len(r.events) {
		r.eN++
	}
	r.mu.Unlock()
}

// slowCutLocked returns the rolling 90th-percentile latency (the
// slowest-decile threshold), or +Inf while fewer than 20 latencies have
// been seen — early queries must not all be pinned as "slow".
func (r *Recorder) slowCutLocked() float64 {
	if r.lN < 20 {
		return inf
	}
	tmp := make([]float64, r.lN)
	copy(tmp, r.lats[:r.lN])
	sort.Float64s(tmp)
	return tmp[(r.lN*9)/10]
}

const inf = 1e308

// Record files one completed query. It stamps the sequence number,
// decides the always-keep reason, attaches overlapping process events,
// and appends to the ring(s).
func (r *Recorder) Record(qr QueryRecord) {
	if r == nil {
		return
	}
	end := qr.Start.Add(time.Duration(qr.LatencyMS * float64(time.Millisecond)))
	r.mu.Lock()
	r.seq++
	qr.Seq = r.seq

	// Attribute process events. An event that carries a trace ID is
	// attributed by identity — it belongs to exactly the query whose
	// trace it occurred under, never to a concurrent bystander. Only
	// trace-less events (process-global fault fires, breaker
	// transitions) fall back to time-window overlap, which under
	// concurrency honestly attributes them to every overlapping query.
	start := r.eHead - r.eN
	if start < 0 {
		start += len(r.events)
	}
	for i := 0; i < r.eN; i++ {
		ev := r.events[(start+i)%len(r.events)]
		if ev.TraceID != "" {
			if qr.TraceID != "" && ev.TraceID == qr.TraceID {
				qr.Events = append(qr.Events, ev)
			}
			continue
		}
		if !ev.T.Before(qr.Start) && !ev.T.After(end) {
			qr.Events = append(qr.Events, ev)
		}
	}

	// Always-keep sampling.
	switch {
	case qr.Status >= 400 || qr.Err != "":
		qr.Keep = "error"
	case qr.Degraded:
		qr.Keep = "degraded"
	case qr.ContractVerdict != "" && qr.ContractVerdict != "met":
		qr.Keep = "contract_" + qr.ContractVerdict
	case qr.LatencyMS >= r.slowCutLocked():
		qr.Keep = "slow"
	}

	r.lats[r.lHead] = qr.LatencyMS
	r.lHead = (r.lHead + 1) % len(r.lats)
	if r.lN < len(r.lats) {
		r.lN++
	}

	r.recent[r.rHead] = qr
	r.rHead = (r.rHead + 1) % len(r.recent)
	if r.rN < len(r.recent) {
		r.rN++
	}
	if qr.Keep != "" {
		r.notable[r.nHead] = qr
		r.nHead = (r.nHead + 1) % len(r.notable)
		if r.nN < len(r.notable) {
			r.nN++
		}
	}
	r.mu.Unlock()
}

// Bundle is one flight-recorder dump: every retained query record
// (recent ∪ notable, deduplicated, oldest first) plus the raw process-
// event ring.
type Bundle struct {
	GeneratedAt time.Time `json:"generated_at"`
	// Reason says what triggered the dump: "http", "sigquit", "panic",
	// or "slo_fast_burn:<objective>".
	Reason  string        `json:"reason"`
	Queries []QueryRecord `json:"queries"`
	Events  []Event       `json:"events"`
	// SLO carries the objective statuses at dump time when the caller
	// supplied them.
	SLO []ObjectiveStatus `json:"slo,omitempty"`
	// Info is free-form identity (build info, uptime).
	Info map[string]string `json:"info,omitempty"`
}

// Snapshot assembles a Bundle (without SLO/Info; callers add those).
func (r *Recorder) Snapshot(reason string) Bundle {
	b := Bundle{GeneratedAt: time.Now(), Reason: reason}
	if r == nil {
		return b
	}
	r.mu.Lock()
	seen := make(map[uint64]bool, r.rN+r.nN)
	collect := func(ring []QueryRecord, head, n int) {
		start := head - n
		if start < 0 {
			start += len(ring)
		}
		for i := 0; i < n; i++ {
			qr := ring[(start+i)%len(ring)]
			if !seen[qr.Seq] {
				seen[qr.Seq] = true
				b.Queries = append(b.Queries, qr)
			}
		}
	}
	collect(r.notable, r.nHead, r.nN)
	collect(r.recent, r.rHead, r.rN)
	estart := r.eHead - r.eN
	if estart < 0 {
		estart += len(r.events)
	}
	for i := 0; i < r.eN; i++ {
		b.Events = append(b.Events, r.events[(estart+i)%len(r.events)])
	}
	r.mu.Unlock()
	sort.Slice(b.Queries, func(i, j int) bool { return b.Queries[i].Seq < b.Queries[j].Seq })
	return b
}

// WriteJSON serializes a bundle as indented JSON.
func (b Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
