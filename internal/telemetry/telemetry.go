// Package telemetry turns the server's instantaneous metric gauges into
// an operable observability surface: a ring-buffer time-series store
// that snapshots every metric family on a fixed cadence, an SLO engine
// that evaluates declarative objectives over those series as
// multi-window burn rates, and a bounded flight recorder that retains
// the last N queries' span trees and fault events for postmortems.
//
// The package deliberately sits *beside* the hot path, not on it: query
// execution writes to the ordinary metrics registry, and the store's
// collector copies that registry once per step under its own lock. A
// query never takes a telemetry lock; the only per-query telemetry cost
// is one flight-recorder append (a mutex and a ring slot).
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Hist is the time-series snapshot of one histogram family: cumulative
// counts per bucket bound, so windowed quantiles derive from the delta
// of two snapshots.
type Hist struct {
	// Bounds are the finite upper bounds; an implicit +Inf bucket
	// follows.
	Bounds []float64 `json:"bounds"`
	// Cum[i] is the cumulative observation count at Bounds[i]; the last
	// entry (len(Bounds)) is the +Inf cumulative count == Count.
	Cum   []float64 `json:"cum"`
	Sum   float64   `json:"sum"`
	Count float64   `json:"count"`
}

// Sample is one snapshot of every metric family at an instant.
type Sample struct {
	T        time.Time          `json:"t"`
	Counters map[string]float64 `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Hists    map[string]Hist    `json:"hists,omitempty"`
}

// StoreConfig tunes the time-series store.
type StoreConfig struct {
	// Step is the snapshot cadence (default 10s).
	Step time.Duration
	// Window is how much history the ring retains (default 15m). The
	// ring capacity is Window/Step samples.
	Window time.Duration
	// Collect produces one Sample; called once per step (and by Snap).
	Collect func() Sample
	// OnSnap, when non-nil, observes every stored sample — the SLO
	// engine hangs its evaluation tick here.
	OnSnap func(Sample)
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Step <= 0 {
		c.Step = 10 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 15 * time.Minute
	}
	return c
}

// Store is a fixed-capacity ring buffer of metric samples. Writers (the
// cadence ticker) and readers (history queries, SLO evaluation) share
// one mutex; the capacity is small (Window/Step) and appends copy only
// map headers the collector already allocated, so the lock is held for
// microseconds.
type Store struct {
	cfg StoreConfig

	mu   sync.Mutex
	buf  []Sample // ring, capacity fixed at construction
	head int      // next write position
	n    int      // samples stored (≤ cap)

	stop chan struct{}
	done chan struct{}
}

// NewStore builds a store; call Start to begin the snapshot cadence, or
// drive it manually with Snap (tests, aqpsh).
func NewStore(cfg StoreConfig) *Store {
	cfg = cfg.withDefaults()
	capacity := int(cfg.Window / cfg.Step)
	if capacity < 2 {
		capacity = 2
	}
	return &Store{cfg: cfg, buf: make([]Sample, capacity)}
}

// Step returns the snapshot cadence.
func (s *Store) Step() time.Duration { return s.cfg.Step }

// Window returns the retention window.
func (s *Store) Window() time.Duration { return s.cfg.Window }

// Start launches the snapshot ticker. Close stops it.
func (s *Store) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	// Baseline sample before the first tick: without it, anything that
	// happens in the first step has no older edge to delta against and
	// is invisible to rates, windowed quantiles, and SLO windows.
	s.Snap()
	go func() {
		defer close(done)
		t := time.NewTicker(s.cfg.Step)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Snap()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the ticker (idempotent; a never-started store is a no-op).
func (s *Store) Close() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Snap collects one sample immediately, stores it, and returns it.
func (s *Store) Snap() Sample {
	smp := s.cfg.Collect()
	if smp.T.IsZero() {
		smp.T = time.Now()
	}
	s.mu.Lock()
	s.buf[s.head] = smp
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
	if s.cfg.OnSnap != nil {
		s.cfg.OnSnap(smp)
	}
	return smp
}

// Samples returns the stored samples, oldest first.
func (s *Store) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// History returns the samples inside the trailing window, downsampled to
// at most one sample per step (the newest sample in each step slot wins,
// keeping the most recent cumulative values). step ≤ 0 or below the
// store cadence returns the raw cadence.
func (s *Store) History(window, step time.Duration) []Sample {
	all := s.Samples()
	if len(all) == 0 {
		return nil
	}
	if window <= 0 {
		window = s.cfg.Window
	}
	cutoff := all[len(all)-1].T.Add(-window)
	first := 0
	for first < len(all) && all[first].T.Before(cutoff) {
		first++
	}
	all = all[first:]
	if step <= s.cfg.Step {
		return all
	}
	var out []Sample
	var slot int64 = math.MinInt64
	for _, smp := range all {
		sl := smp.T.UnixNano() / int64(step)
		if sl == slot && len(out) > 0 {
			out[len(out)-1] = smp // newest in slot wins
			continue
		}
		slot = sl
		out = append(out, smp)
	}
	return out
}

// WindowEdges returns the newest sample and the newest sample at least d
// older than it (falling back to the oldest stored sample when the ring
// does not yet span d). ok is false with fewer than two samples.
func (s *Store) WindowEdges(d time.Duration) (old, latest Sample, ok bool) {
	all := s.Samples()
	if len(all) < 2 {
		return Sample{}, Sample{}, false
	}
	latest = all[len(all)-1]
	cutoff := latest.T.Add(-d)
	old = all[0]
	for _, smp := range all[:len(all)-1] {
		if smp.T.After(cutoff) {
			break
		}
		old = smp
	}
	return old, latest, true
}

// FamilySum sums every series of a counter family in one sample: the key
// exactly equal to the family name, or starting with it followed by a
// label block — the same guard Metrics.CounterSum applies, so families
// sharing a name prefix stay apart. family may join several families
// with '+' ("a_total+b_total"), summing them all: SLO totals are often
// the sum of an outcome pair (covered+missed, held+broken).
func FamilySum(counters map[string]float64, family string) float64 {
	var sum float64
	for _, fam := range strings.Split(family, "+") {
		labeled := fam + "{"
		for k, v := range counters {
			if k == fam || strings.HasPrefix(k, labeled) {
				sum += v
			}
		}
	}
	return sum
}

// FamilyHistSum merges every labeled series of a histogram family in one
// sample into a single Hist (bucket-wise sum). Series with differing
// bounds are skipped rather than misaligned. ok is false when no series
// of the family exists.
func FamilyHistSum(hists map[string]Hist, family string) (Hist, bool) {
	var out Hist
	found := false
	labeled := family + "{"
	keys := make([]string, 0, 4)
	for k := range hists {
		if k == family || strings.HasPrefix(k, labeled) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		if !found {
			out = Hist{
				Bounds: append([]float64(nil), h.Bounds...),
				Cum:    append([]float64(nil), h.Cum...),
				Sum:    h.Sum,
				Count:  h.Count,
			}
			found = true
			continue
		}
		if len(h.Bounds) != len(out.Bounds) {
			continue
		}
		for i := range h.Cum {
			out.Cum[i] += h.Cum[i]
		}
		out.Sum += h.Sum
		out.Count += h.Count
	}
	return out, found
}

// DeltaHist subtracts an older snapshot of a histogram family from a
// newer one, yielding the observations made in between. Bound mismatches
// (a family re-created with different buckets) return the newer
// snapshot as-is — cumulative counters only grow, so that is the
// conservative reading.
func DeltaHist(older, newer Hist) Hist {
	if len(older.Bounds) != len(newer.Bounds) || len(older.Cum) != len(newer.Cum) {
		return newer
	}
	out := Hist{
		Bounds: append([]float64(nil), newer.Bounds...),
		Cum:    make([]float64, len(newer.Cum)),
		Sum:    newer.Sum - older.Sum,
		Count:  newer.Count - older.Count,
	}
	for i := range newer.Cum {
		d := newer.Cum[i] - older.Cum[i]
		if d < 0 {
			d = 0
		}
		out.Cum[i] = d
	}
	if out.Count < 0 {
		out.Count = 0
	}
	return out
}

// Rate is the per-second rate of a cumulative counter family between two
// samples (0 when the interval is empty or non-positive).
func Rate(older, newer Sample, family string) float64 {
	dt := newer.T.Sub(older.T).Seconds()
	if dt <= 0 {
		return 0
	}
	d := FamilySum(newer.Counters, family) - FamilySum(older.Counters, family)
	if d < 0 {
		d = 0
	}
	return d / dt
}
