package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"
)

// Objective kinds.
const (
	// KindLatency holds a quantile of a latency histogram under a
	// threshold: good events are observations at or below ThresholdMS,
	// and Target is the required good fraction (0.99 = "p99 ≤ threshold").
	KindLatency = "latency"
	// KindRatioFloor holds Good/Total at or above Target (audit CI
	// coverage, contract hold-rate).
	KindRatioFloor = "ratio_floor"
	// KindRatioCeiling holds Bad/Total at or below Target (degradation
	// rate); internally it is the floor 1-Target on the good fraction.
	KindRatioCeiling = "ratio_ceiling"
)

// Duration is a time.Duration that JSON-decodes from Go duration strings
// ("5m", "1h") so SLO config files stay readable.
type Duration time.Duration

// UnmarshalJSON accepts a duration string or a number of seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("telemetry: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("telemetry: bad duration %s", b)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// MarshalJSON renders the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Objective is one declarative service-level objective over the metric
// time-series. Counter families are summed across their labeled series.
type Objective struct {
	Name string `json:"name"`
	// Kind is "latency", "ratio_floor", or "ratio_ceiling".
	Kind string `json:"kind"`

	// Hist + ThresholdMS define a latency objective's good event:
	// an observation of the named histogram family at or below the
	// threshold.
	Hist        string  `json:"hist,omitempty"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`

	// Good/Bad/Total name counter families for ratio objectives:
	// ratio_floor uses Good/Total, ratio_ceiling uses Bad/Total.
	Good  string `json:"good,omitempty"`
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`

	// Target is the objective: minimum good fraction for latency and
	// ratio_floor, maximum bad fraction for ratio_ceiling.
	Target float64 `json:"target"`

	// FastWindow/SlowWindow are the two burn-rate windows (defaults
	// 5m / 1h). The fast window detects an active incident, the slow
	// window keeps a brief blip from paging.
	FastWindow Duration `json:"fast_window,omitempty"`
	SlowWindow Duration `json:"slow_window,omitempty"`
	// FastBurn is the burn-rate threshold that, sustained in BOTH
	// windows, declares a fast burn (default 14 — the classic
	// "2% of a 30-day budget in one hour" pace).
	FastBurn float64 `json:"fast_burn,omitempty"`
	// MinEvents is the event count below which a window abstains from
	// judging (default 1): one unlucky query must not page.
	MinEvents float64 `json:"min_events,omitempty"`
}

func (o Objective) withDefaults() Objective {
	if o.FastWindow <= 0 {
		o.FastWindow = Duration(5 * time.Minute)
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = Duration(time.Hour)
	}
	if o.FastBurn <= 0 {
		o.FastBurn = 14
	}
	if o.MinEvents <= 0 {
		o.MinEvents = 1
	}
	return o
}

// validate rejects malformed objectives at config-parse time.
func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("telemetry: objective missing name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("telemetry: objective %s: target %g outside (0, 1)", o.Name, o.Target)
	}
	switch o.Kind {
	case KindLatency:
		if o.Hist == "" || o.ThresholdMS <= 0 {
			return fmt.Errorf("telemetry: latency objective %s needs hist and threshold_ms", o.Name)
		}
	case KindRatioFloor:
		if o.Good == "" || o.Total == "" {
			return fmt.Errorf("telemetry: ratio_floor objective %s needs good and total", o.Name)
		}
	case KindRatioCeiling:
		if o.Bad == "" || o.Total == "" {
			return fmt.Errorf("telemetry: ratio_ceiling objective %s needs bad and total", o.Name)
		}
	default:
		return fmt.Errorf("telemetry: objective %s: unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// floor returns the good-fraction floor the objective enforces.
func (o Objective) floor() float64 {
	if o.Kind == KindRatioCeiling {
		return 1 - o.Target
	}
	return o.Target
}

// ParseObjectives decodes an SLO config: a JSON array of objectives.
func ParseObjectives(b []byte) ([]Objective, error) {
	var out []Objective
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("telemetry: bad SLO config: %v", err)
	}
	for i := range out {
		out[i] = out[i].withDefaults()
		if err := out[i].validate(); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("telemetry: empty SLO config")
	}
	return out, nil
}

// DefaultObjectives are the out-of-the-box aqpd objectives: latency,
// audit CI coverage, contract hold-rate, and degradation rate — the four
// signals the paper's no-silver-bullet thesis says an operator must
// watch to trust an AQP deployment. The coverage floor matches the audit
// lane's error-budget band lower edge, and the hold-rate floor is the
// typical contracted confidence.
func DefaultObjectives() []Objective {
	objs := []Objective{
		{Name: "latency_p99", Kind: KindLatency,
			Hist: "query_latency_ms", ThresholdMS: 1000, Target: 0.99},
		{Name: "audit_coverage", Kind: KindRatioFloor,
			Good: "audit_covered_total", Total: "audit_covered_total+audit_missed_total", Target: 0.93},
		{Name: "contract_hold", Kind: KindRatioFloor,
			Good: "audit_contract_held_total", Total: "audit_contract_held_total+audit_contract_broken_total", Target: 0.95},
		{Name: "degradation_rate", Kind: KindRatioCeiling,
			Bad: "queries_degraded_total", Total: "queries_total", Target: 0.05},
	}
	for i := range objs {
		objs[i] = objs[i].withDefaults()
	}
	return objs
}

// WindowStatus is one burn-rate window's evaluation.
type WindowStatus struct {
	Window Duration `json:"window"`
	// Events is the total event count observed in the window.
	Events float64 `json:"events"`
	// GoodRatio is the good fraction in the window (1 when no events).
	GoodRatio float64 `json:"good_ratio"`
	// Burn is the burn rate: (1-GoodRatio)/(1-floor). 1.0 consumes the
	// error budget exactly at the sustainable pace.
	Burn float64 `json:"burn"`
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Objective Objective    `json:"objective"`
	Fast      WindowStatus `json:"fast"`
	Slow      WindowStatus `json:"slow"`
	// BudgetRemaining is the error budget left over the slow window:
	// 1 - Slow.Burn (negative = overdrawn), capped at 1.
	BudgetRemaining float64 `json:"budget_remaining"`
	// State is "warming" (not enough data), "ok", "burning" (budget
	// consumed faster than sustainable), or "fast_burn" (both windows
	// over the FastBurn threshold — page, dump the flight recorder).
	State string `json:"state"`
}

// SLO evaluates a fixed set of objectives against a Store and
// edge-detects fast burns.
type SLO struct {
	store *SLOStoreRef
	objs  []Objective

	mu      sync.Mutex
	burning map[string]bool // objectives currently in fast_burn
	last    []ObjectiveStatus
	onFast  func(ObjectiveStatus)
}

// SLOStoreRef is the slice of the Store API the engine needs (it keeps
// the engine testable against synthetic edges).
type SLOStoreRef struct {
	Edges func(d time.Duration) (old, latest Sample, ok bool)
}

// NewSLO builds the engine over a store. onFastBurn (optional) fires
// once per objective each time it *enters* the fast_burn state.
func NewSLO(store *Store, objs []Objective, onFastBurn func(ObjectiveStatus)) *SLO {
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	withDefaults := make([]Objective, len(objs))
	for i, o := range objs {
		withDefaults[i] = o.withDefaults()
	}
	return &SLO{
		store:   &SLOStoreRef{Edges: store.WindowEdges},
		objs:    withDefaults,
		burning: make(map[string]bool),
		onFast:  onFastBurn,
	}
}

// Objectives returns the configured objectives.
func (e *SLO) Objectives() []Objective { return e.objs }

// Last returns the most recent evaluation (nil before the first). It is
// stored before fast-burn callbacks fire, so a flight dump triggered by
// a callback sees the statuses that caused it.
func (e *SLO) Last() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// goodTotal extracts (good, total) event counts for the objective from
// the delta between two samples.
func (o Objective) goodTotal(old, latest Sample) (good, total float64) {
	switch o.Kind {
	case KindLatency:
		ho, _ := FamilyHistSum(old.Hists, o.Hist)
		hn, ok := FamilyHistSum(latest.Hists, o.Hist)
		if !ok {
			return 0, 0
		}
		d := DeltaHist(ho, hn)
		return HistCumAt(d, o.ThresholdMS), d.Count
	case KindRatioCeiling:
		total = FamilySum(latest.Counters, o.Total) - FamilySum(old.Counters, o.Total)
		bad := FamilySum(latest.Counters, o.Bad) - FamilySum(old.Counters, o.Bad)
		return total - bad, total
	default: // ratio_floor
		total = FamilySum(latest.Counters, o.Total) - FamilySum(old.Counters, o.Total)
		good = FamilySum(latest.Counters, o.Good) - FamilySum(old.Counters, o.Good)
		return good, total
	}
}

// window evaluates one burn-rate window.
func (o Objective) window(d time.Duration, edges func(time.Duration) (Sample, Sample, bool)) WindowStatus {
	ws := WindowStatus{Window: Duration(d), GoodRatio: 1}
	old, latest, ok := edges(d)
	if !ok {
		return ws
	}
	good, total := o.goodTotal(old, latest)
	ws.Events = total
	if total <= 0 {
		return ws
	}
	ratio := good / total
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	ws.GoodRatio = ratio
	budget := 1 - o.floor()
	if budget <= 0 {
		budget = math.SmallestNonzeroFloat64
	}
	ws.Burn = (1 - ratio) / budget
	return ws
}

// Evaluate computes every objective's status against the store and fires
// the fast-burn callback for objectives that just entered fast_burn.
func (e *SLO) Evaluate() []ObjectiveStatus {
	out := make([]ObjectiveStatus, 0, len(e.objs))
	var fired []ObjectiveStatus
	e.mu.Lock()
	for _, o := range e.objs {
		st := ObjectiveStatus{
			Objective: o,
			Fast:      o.window(time.Duration(o.FastWindow), e.store.Edges),
			Slow:      o.window(time.Duration(o.SlowWindow), e.store.Edges),
		}
		st.BudgetRemaining = 1 - st.Slow.Burn
		if st.BudgetRemaining > 1 {
			st.BudgetRemaining = 1
		}
		switch {
		case st.Fast.Events < o.MinEvents && st.Slow.Events < o.MinEvents:
			st.State = "warming"
		case st.Fast.Burn >= o.FastBurn && st.Slow.Burn >= o.FastBurn &&
			st.Fast.Events >= o.MinEvents:
			st.State = "fast_burn"
		case st.Fast.Burn >= 1:
			st.State = "burning"
		default:
			st.State = "ok"
		}
		entering := st.State == "fast_burn" && !e.burning[o.Name]
		e.burning[o.Name] = st.State == "fast_burn"
		if entering && e.onFast != nil {
			fired = append(fired, st)
		}
		out = append(out, st)
	}
	e.last = out
	e.mu.Unlock()
	// Fire outside the lock: the callback dumps the flight recorder,
	// which must be free to read telemetry state.
	for _, st := range fired {
		e.onFast(st)
	}
	return out
}
