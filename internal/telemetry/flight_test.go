package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRecorderKeepReasons(t *testing.T) {
	r := NewRecorder(RecorderConfig{Queries: 8})
	t0 := time.Unix(1000, 0)

	r.Record(QueryRecord{Start: t0, SQL: "ok", Status: 200, LatencyMS: 5})
	r.Record(QueryRecord{Start: t0, SQL: "boom", Status: 500, Err: "x", LatencyMS: 5})
	r.Record(QueryRecord{Start: t0, SQL: "deg", Status: 200, Degraded: true, LatencyMS: 5})
	r.Record(QueryRecord{Start: t0, SQL: "miss", Status: 200, ContractVerdict: "missed", LatencyMS: 5})
	r.Record(QueryRecord{Start: t0, SQL: "held", Status: 200, ContractVerdict: "met", LatencyMS: 5})

	b := r.Snapshot("test")
	keeps := map[string]string{}
	for _, q := range b.Queries {
		keeps[q.SQL] = q.Keep
	}
	want := map[string]string{
		"ok":   "",
		"boom": "error",
		"deg":  "degraded",
		"miss": "contract_missed",
		"held": "",
	}
	for sql, k := range want {
		if keeps[sql] != k {
			t.Errorf("query %q keep = %q, want %q", sql, keeps[sql], k)
		}
	}
}

func TestRecorderSlowDecile(t *testing.T) {
	r := NewRecorder(RecorderConfig{Queries: 256})
	t0 := time.Unix(1000, 0)
	// 100 fast queries establish the latency distribution.
	for i := 0; i < 100; i++ {
		r.Record(QueryRecord{Start: t0, SQL: "fast", Status: 200, LatencyMS: 10})
	}
	// An outlier must be pinned as "slow".
	r.Record(QueryRecord{Start: t0, SQL: "outlier", Status: 200, LatencyMS: 500})
	b := r.Snapshot("test")
	var got string
	for _, q := range b.Queries {
		if q.SQL == "outlier" {
			got = q.Keep
		}
	}
	if got != "slow" {
		t.Fatalf("outlier keep = %q, want slow", got)
	}
	// Early queries (before 20 samples) are never pinned as slow.
	r2 := NewRecorder(RecorderConfig{Queries: 8})
	r2.Record(QueryRecord{Start: t0, SQL: "first", Status: 200, LatencyMS: 500})
	if b := r2.Snapshot("t"); b.Queries[0].Keep != "" {
		t.Fatalf("first query pinned %q before distribution warmed", b.Queries[0].Keep)
	}
}

func TestRecorderNotableSurvivesRecentEviction(t *testing.T) {
	r := NewRecorder(RecorderConfig{Queries: 4})
	t0 := time.Unix(1000, 0)
	r.Record(QueryRecord{Start: t0, SQL: "bad", Status: 500, LatencyMS: 1})
	for i := 0; i < 10; i++ {
		r.Record(QueryRecord{Start: t0, SQL: "filler", Status: 200, LatencyMS: 1})
	}
	b := r.Snapshot("test")
	found := false
	for _, q := range b.Queries {
		if q.SQL == "bad" {
			found = true
		}
	}
	if !found {
		t.Fatal("errored query evicted from bundle despite always-keep")
	}
	// Bundle must be Seq-sorted and deduplicated.
	seen := map[uint64]bool{}
	for i, q := range b.Queries {
		if seen[q.Seq] {
			t.Fatalf("duplicate seq %d", q.Seq)
		}
		seen[q.Seq] = true
		if i > 0 && q.Seq <= b.Queries[i-1].Seq {
			t.Fatalf("bundle not sorted at %d", i)
		}
	}
}

func TestRecorderEventAttribution(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	t0 := time.Unix(1000, 0)
	r.AddEvent(Event{T: t0.Add(-time.Second), Kind: "fault_fire", Name: "before"})
	r.AddEvent(Event{T: t0.Add(5 * time.Millisecond), Kind: "fault_fire", Name: "during"})
	r.AddEvent(Event{T: t0.Add(time.Hour), Kind: "fault_fire", Name: "after"})
	r.Record(QueryRecord{Start: t0, SQL: "q", Status: 200, LatencyMS: 10})
	b := r.Snapshot("test")
	if len(b.Queries) != 1 {
		t.Fatalf("queries = %d", len(b.Queries))
	}
	evs := b.Queries[0].Events
	if len(evs) != 1 || evs[0].Name != "during" {
		t.Fatalf("attributed events = %+v, want exactly [during]", evs)
	}
	if len(b.Events) != 3 {
		t.Fatalf("bundle event ring has %d events, want 3", len(b.Events))
	}
}

func TestRecorderEventRingBounded(t *testing.T) {
	r := NewRecorder(RecorderConfig{Queries: 2, Events: 4})
	for i := 0; i < 20; i++ {
		r.AddEvent(Event{Kind: "breaker", Name: "x"})
	}
	if b := r.Snapshot("test"); len(b.Events) != 4 {
		t.Fatalf("event ring retained %d, want 4", len(b.Events))
	}
}

func TestBundleJSONRoundTrip(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	r.Record(QueryRecord{Start: time.Unix(1000, 0), SQL: "select 1", Status: 200, LatencyMS: 2})
	b := r.Snapshot("sigquit")
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Bundle
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("bundle JSON does not round-trip: %v", err)
	}
	if back.Reason != "sigquit" || len(back.Queries) != 1 {
		t.Fatalf("round-trip = %+v", back)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(QueryRecord{})
	r.AddEvent(Event{})
	if b := r.Snapshot("x"); len(b.Queries) != 0 {
		t.Fatal("nil recorder returned queries")
	}
}

// TestRecorderTraceIDAttribution: an event carrying a trace ID attaches
// only to the query with that trace, even when a concurrent bystander's
// time window overlaps it; trace-less events keep overlap attribution.
func TestRecorderTraceIDAttribution(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	t0 := time.Unix(1000, 0)
	// Two queries run concurrently over the same window; a shard event
	// fires under query A's trace, and a process-global fault fires with
	// no trace.
	r.AddEvent(Event{T: t0.Add(5 * time.Millisecond), Kind: "shard", Name: "orders", Shard: 2, TraceID: "aaa"})
	r.AddEvent(Event{T: t0.Add(6 * time.Millisecond), Kind: "fault_fire", Name: "global"})
	r.Record(QueryRecord{Start: t0, SQL: "qa", TraceID: "aaa", Status: 200, LatencyMS: 10})
	r.Record(QueryRecord{Start: t0, SQL: "qb", TraceID: "bbb", Status: 200, LatencyMS: 10})

	b := r.Snapshot("test")
	byTrace := map[string][]Event{}
	for _, q := range b.Queries {
		byTrace[q.TraceID] = q.Events
	}
	wantA := map[string]bool{"orders": true, "global": true}
	gotA := map[string]bool{}
	for _, ev := range byTrace["aaa"] {
		gotA[ev.Name] = true
	}
	if len(byTrace["aaa"]) != 2 || !gotA["orders"] || !gotA["global"] {
		t.Fatalf("query A events = %+v, want %v", byTrace["aaa"], wantA)
	}
	if len(byTrace["bbb"]) != 1 || byTrace["bbb"][0].Name != "global" {
		t.Fatalf("query B events = %+v, want only the trace-less global fault", byTrace["bbb"])
	}
}

// TestRecorderTracedEventNeverOverlapAttributed: a traced event whose
// query record never arrives (e.g. evicted) must not leak onto an
// overlapping trace-less record either.
func TestRecorderTracedEventNeverOverlapAttributed(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	t0 := time.Unix(1000, 0)
	r.AddEvent(Event{T: t0.Add(time.Millisecond), Kind: "shard", Name: "orders", TraceID: "aaa"})
	r.Record(QueryRecord{Start: t0, SQL: "untraced", Status: 200, LatencyMS: 10})
	b := r.Snapshot("test")
	if evs := b.Queries[0].Events; len(evs) != 0 {
		t.Fatalf("trace-less record got traced events %+v", evs)
	}
}
