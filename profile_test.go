package aqp

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
)

// profileDB builds a table big enough that the morsel scheduler cuts
// several morsels (minMorselRows is 8192): 5+ morsels at 48k rows.
func profileDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	tbl, err := db.CreateTable("t", Schema{
		{Name: "x", Type: TypeFloat64},
		{Name: "g", Type: TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 48_000
	rows := make([][]Value, 0, 8192)
	for i := 0; i < n; i++ {
		rows = append(rows, []Value{
			Float64(float64(i%1000) / 10),
			Str(fmt.Sprintf("g%d", i%4)),
		})
		if len(rows) == cap(rows) {
			if err := tbl.AppendRows(rows); err != nil {
				t.Fatal(err)
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if err := tbl.AppendRows(rows); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestExplainReturnsPlanWithoutExecuting(t *testing.T) {
	db := profileDB(t)
	res, err := db.Query("EXPLAIN SELECT SUM(x) FROM t WHERE x > 10 GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	text := resultText(res)
	if !strings.Contains(text, "Aggregate") || !strings.Contains(text, "Scan t") {
		t.Fatalf("plan text missing operators:\n%s", text)
	}
	// FormatResult must render it without panicking (Items populated).
	_ = FormatResult(res)
}

func TestExplainAnalyzeParallelProfile(t *testing.T) {
	db := profileDB(t)
	ctx := exec.ContextWithWorkers(context.Background(), 4)
	res, err := db.QueryContext(ctx, "EXPLAIN ANALYZE SELECT SUM(x), COUNT(*) FROM t WHERE x > 10 GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueExact {
		t.Fatalf("technique = %s", res.Technique)
	}
	text := resultText(res)
	// Per-operator wall time and rows in/out.
	if !strings.Contains(text, "ms") || !strings.Contains(text, "in=") || !strings.Contains(text, "out=") {
		t.Fatalf("profile missing timings or row counts:\n%s", text)
	}
	if !strings.Contains(text, "engine exact") || !strings.Contains(text, "HashAggregate") {
		t.Fatalf("profile missing spans:\n%s", text)
	}
	// Per-worker morsel counts for all 4 workers.
	for w := 0; w < 4; w++ {
		if !strings.Contains(text, fmt.Sprintf("worker %d", w)) {
			t.Fatalf("profile missing worker %d:\n%s", w, text)
		}
	}
	if !strings.Contains(text, "morsels=") || !strings.Contains(text, "stall=") {
		t.Fatalf("profile missing morsel/stall accounting:\n%s", text)
	}
	if !strings.Contains(text, "merge") {
		t.Fatalf("profile missing merge span:\n%s", text)
	}
}

// TestTracedParallelDeterminism is the acceptance bar for observability:
// with tracing enabled, a 1-worker and a 4-worker run of the same
// aggregate produce bit-identical rows.
func TestTracedParallelDeterminism(t *testing.T) {
	db := profileDB(t)
	const sql = "SELECT g, SUM(x), AVG(x), COUNT(*) FROM t WHERE x > 10 GROUP BY g ORDER BY g"

	run := func(workers int) *Result {
		ctx, prof := WithProfile(context.Background())
		ctx = exec.ContextWithWorkers(ctx, workers)
		res, err := db.QueryContext(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		p := prof.Profile()
		if p == nil || p.Find("engine exact") == nil {
			t.Fatalf("W=%d: profile not recorded", workers)
		}
		if workers > 1 {
			workerSpans := p.FindAll("worker ")
			if len(workerSpans) != workers {
				t.Fatalf("W=%d: %d worker spans:\n%s", workers, len(workerSpans), p)
			}
			var morsels int64
			for _, ws := range workerSpans {
				var m int64
				fmt.Sscanf(ws.Attr("morsels"), "%d", &m)
				morsels += m
			}
			if morsels < 5 {
				t.Fatalf("W=%d: only %d morsels claimed across workers, want >= 5", workers, morsels)
			}
		}
		return res
	}

	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("traced W=1 and W=4 rows differ:\n%v\n%v", serial.Rows, parallel.Rows)
	}
}

// TestProfileDisabledUnchanged checks queries without tracing or EXPLAIN
// still behave identically (guard against runStatement regressions).
func TestProfileDisabledUnchanged(t *testing.T) {
	db := profileDB(t)
	res, err := db.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsFloat(); got != 48_000 {
		t.Fatalf("COUNT(*) = %v", got)
	}
}

func resultText(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row[0].S)
		sb.WriteByte('\n')
	}
	return sb.String()
}
