package aqp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func demoDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	tbl, err := db.CreateTable("sales", Schema{
		{Name: "region", Type: TypeString},
		{Name: "amount", Type: TypeFloat64},
		{Name: "qty", Type: TypeInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"east", "west", "north"}
	for i := 0; i < 300; i++ {
		if err := tbl.AppendRow(
			Str(regions[i%3]), Float64(float64(i%100)), Int64(int64(i%7))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestQueryExact(t *testing.T) {
	db := demoDB(t)
	res, err := db.Query("SELECT region, COUNT(*) AS n, SUM(amount) AS s FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Float(0, 1) != 100 {
		t.Errorf("east count = %v", res.Float(0, 1))
	}
	if res.Guarantee != GuaranteeExact {
		t.Errorf("guarantee = %v", res.Guarantee)
	}
}

func TestQueryApproxRoutesToExactForSmallTables(t *testing.T) {
	db := demoDB(t)
	// 300 rows is far below the online sampling threshold, so even the
	// advisor's online choice falls back to exact execution.
	res, err := db.QueryApprox("SELECT SUM(amount) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact && res.Technique != TechniqueExact {
		t.Errorf("expected exact answer for tiny table: %v", res.Technique)
	}
}

func TestQueryApproxWithClause(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 1, Rows: 80000, NumGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := OnlineConfig{DefaultRate: 0.05, MinTableRows: 1000, DistinctKeep: 30, Seed: 1}
	db := Open(ev.Catalog, WithOnlineConfig(cfg))
	res, err := db.QueryApprox("SELECT COUNT(*) AS n FROM events WITH ERROR 10% CONFIDENCE 90%")
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOnline {
		t.Fatalf("technique = %v (%v)", res.Technique, res.Diagnostics.Messages)
	}
	if res.Spec.RelError != 0.10 {
		t.Errorf("spec from SQL = %+v", res.Spec)
	}
	if math.Abs(res.Float(0, 0)-80000)/80000 > 0.1 {
		t.Errorf("estimate = %v", res.Float(0, 0))
	}
}

func TestOfflinePipelineThroughFacade(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 2, Rows: 40000, NumGroups: 10, Skew: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog)
	if err := db.BuildOfflineSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT ev_group, SUM(ev_value) AS s FROM events GROUP BY ev_group"
	if err := db.ProfileOffline(sql); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryOffline(sql, ErrorSpec{RelError: 0.5, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOffline || res.Guarantee != GuaranteeAPriori {
		t.Fatalf("offline result: %v %v (%v)", res.Technique, res.Guarantee, res.Diagnostics.Messages)
	}
	// Advisor prefers the certified sample.
	dec, err := db.Advise(sql, ErrorSpec{RelError: 0.5, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Technique != TechniqueOffline {
		t.Errorf("advise = %+v", dec)
	}
	// Maintenance stats exposed.
	if db.OfflineEngine().Maintenance.SamplesBuilt == 0 {
		t.Error("maintenance stats missing")
	}
}

func TestProgressiveThroughFacade(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 3, Rows: 30000, NumGroups: 5})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog, WithOLAConfig(OLAConfig{ChunkRows: 3000, MaxFraction: 1, Seed: 4}))
	checkpoints := 0
	_, err = db.QueryProgressive("SELECT AVG(ev_value) AS m FROM events", DefaultErrorSpec,
		func(p Progress) bool {
			checkpoints++
			return checkpoints < 4
		})
	if err != nil {
		t.Fatal(err)
	}
	if checkpoints != 4 {
		t.Errorf("checkpoints = %d", checkpoints)
	}
}

func TestExplain(t *testing.T) {
	db := demoDB(t)
	out, err := db.Explain("SELECT region, SUM(amount) FROM sales WHERE qty > 2 GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HashAggregate", "Scan sales", "filter="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestLoadCSVAndDump(t *testing.T) {
	db := New()
	csvData := "name,score\nalice,10\nbob,20\ncarol,NULL\n"
	tbl, err := db.LoadCSV("people", Schema{
		{Name: "name", Type: TypeString},
		{Name: "score", Type: TypeFloat64},
	}, strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	res, err := db.Query("SELECT COUNT(*) AS n, SUM(score) AS s FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if res.Float(0, 0) != 3 || res.Float(0, 1) != 30 {
		t.Errorf("count/sum = %v/%v", res.Float(0, 0), res.Float(0, 1))
	}
	var buf bytes.Buffer
	if err := DumpCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n,s") {
		t.Errorf("csv dump:\n%s", buf.String())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := New()
	_, err := db.LoadCSV("bad", Schema{{Name: "x", Type: TypeInt64}},
		strings.NewReader("x\nnot-a-number\n"))
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFormatResult(t *testing.T) {
	db := demoDB(t)
	res, err := db.Query("SELECT COUNT(*) AS n FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "n") || !strings.Contains(out, "300") ||
		!strings.Contains(out, "technique=exact") {
		t.Errorf("format:\n%s", out)
	}
}

func TestPropertyMatrixFacade(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 4, Rows: 30000, NumGroups: 6})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog, WithOnlineConfig(OnlineConfig{
		DefaultRate: 0.05, MinTableRows: 1000, DistinctKeep: 30, Seed: 1}))
	rows, err := db.PropertyMatrix([]string{
		"SELECT SUM(ev_value) FROM events",
		"SELECT MIN(ev_value) FROM events",
	}, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("matrix rows = %d", len(rows))
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	db := demoDB(t)
	if _, err := db.CreateTable("sales", Schema{{Name: "x", Type: TypeInt64}}); err == nil {
		t.Fatal("duplicate table must error")
	}
	if _, err := db.Table("sales"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("nope"); err == nil {
		t.Fatal("unknown table must error")
	}
}
