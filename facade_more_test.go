package aqp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestQueryAsWritten(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 1, Rows: 30000, NumGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog)
	// Sampled as written: approximate with CIs.
	res, err := db.QueryAsWritten("SELECT COUNT(*) AS n FROM events TABLESAMPLE BERNOULLI (10)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOnline || res.Guarantee != GuaranteeAPosteriori {
		t.Errorf("tags = %v %v", res.Technique, res.Guarantee)
	}
	if math.Abs(res.Float(0, 0)-30000)/30000 > 0.15 {
		t.Errorf("estimate = %v", res.Float(0, 0))
	}
	if !res.Items[0][0].HasCI {
		t.Error("sampled as-written query must carry a CI")
	}
	// Unsampled as written: exact.
	res, err = db.QueryAsWritten("SELECT COUNT(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeExact || res.Float(0, 0) != 30000 {
		t.Errorf("unsampled as-written should be exact: %v %v", res.Guarantee, res.Float(0, 0))
	}
	// Spec from the SQL clause.
	res, err = db.QueryAsWritten("SELECT COUNT(*) FROM events TABLESAMPLE BERNOULLI (10) WITH ERROR 20% CONFIDENCE 90%")
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.RelError != 0.20 {
		t.Errorf("spec = %+v", res.Spec)
	}
}

func TestQueryOLAViaFacade(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 2, Rows: 20000, NumGroups: 4})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog)
	res, err := db.QueryOLA("SELECT AVG(ev_value) AS m FROM events", ErrorSpec{RelError: 0.2, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOLA {
		t.Errorf("technique = %v", res.Technique)
	}
}

func TestQueryOnlineViaFacade(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 3, Rows: 60000, NumGroups: 4})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog, WithOnlineConfig(OnlineConfig{
		DefaultRate: 0.05, MinTableRows: 1000, DistinctKeep: 10, Seed: 1}))
	res, err := db.QueryOnline("SELECT SUM(ev_value) FROM events", DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOnline {
		t.Errorf("technique = %v", res.Technique)
	}
	if db.OnlineEngine() == nil || db.SynopsisEngine() == nil || db.Catalog() == nil {
		t.Error("engine accessors")
	}
}

func TestBuildSynopsisAndRebuildViaFacade(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 4, Rows: 20000, NumGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	offCfg := OfflineConfig{Caps: []int{128}, SafetyFactor: 1.2, Seed: 1}
	db := Open(ev.Catalog, aqpWithOffline(offCfg))
	if err := db.BuildSynopsis("events", "ev_user"); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryApprox("SELECT COUNT(DISTINCT ev_user) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueSynopsis {
		t.Errorf("COUNT DISTINCT should route to synopsis: %v", res.Technique)
	}
	if err := db.BuildOfflineSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.RebuildOfflineSamples("events"); err != nil {
		t.Fatal(err)
	}
	if db.OfflineEngine().Maintenance.Rebuilds != 1 {
		t.Error("rebuild not recorded")
	}
}

// aqpWithOffline mirrors WithOfflineConfig for test readability.
func aqpWithOffline(cfg OfflineConfig) Option { return WithOfflineConfig(cfg) }

func TestExecEscapeHatch(t *testing.T) {
	db := demoDB(t)
	raw, err := db.Exec("SELECT region FROM sales TABLESAMPLE BERNOULLI (50)")
	if err != nil {
		t.Fatal(err)
	}
	if raw.Weights == nil {
		t.Error("raw exec must expose weights")
	}
	if raw.Counters.RowsScanned != 300 {
		t.Errorf("counters = %+v", raw.Counters)
	}
	if _, err := db.Exec("SELECT nope FROM sales"); err == nil {
		t.Error("bad SQL must error")
	}
}

func TestDumpTableCSV(t *testing.T) {
	db := New()
	tbl, err := db.CreateTable("t", Schema{
		{Name: "a", Type: TypeInt64},
		{Name: "b", Type: TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(Int64(1), Str("x,y")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpTableCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") || !strings.Contains(out, `"x,y"`) {
		t.Errorf("csv:\n%s", out)
	}
}

func TestFormatResultWithCI(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{Seed: 5, Rows: 60000, NumGroups: 4})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(ev.Catalog, WithOnlineConfig(OnlineConfig{
		DefaultRate: 0.05, MinTableRows: 1000, DistinctKeep: 10, Seed: 1}))
	res, err := db.QueryOnline("SELECT SUM(ev_value) AS s FROM events", DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "±") {
		t.Errorf("CI marker missing:\n%s", out)
	}
	if !strings.Contains(out, "technique=online-sampling") {
		t.Errorf("footer missing:\n%s", out)
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	db := New()
	for _, call := range []func() error{
		func() error { _, err := db.Query("SELECT"); return err },
		func() error { _, err := db.QueryApprox("garbage"); return err },
		func() error { _, err := db.QueryOnline("x", DefaultErrorSpec); return err },
		func() error { _, err := db.QueryOffline("x", DefaultErrorSpec); return err },
		func() error { _, err := db.QueryOLA("x", DefaultErrorSpec); return err },
		func() error { _, err := db.QueryAsWritten("x"); return err },
		func() error { _, err := db.Explain("x"); return err },
		func() error { _, err := db.Advise("x"); return err },
		func() error { _, err := db.QueryProgressive("x", DefaultErrorSpec, nil); return err },
	} {
		if call() == nil {
			t.Error("malformed SQL must error")
		}
	}
}
