package aqp

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/storage"
)

// LoadCSV reads CSV data (with a header row naming columns in schema
// order) into a new table registered under name. Values parse per the
// schema; empty cells and the literal NULL become NULLs.
func (db *DB) LoadCSV(name string, schema Schema, r io.Reader) (*Table, error) {
	t, err := db.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(schema)
	// Header row.
	if _, err := cr.Read(); err != nil {
		if err == io.EOF {
			return t, nil
		}
		return nil, fmt.Errorf("aqp: read CSV header: %w", err)
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("aqp: read CSV line %d: %w", line, err)
		}
		line++
		vals := make([]Value, len(schema))
		for i, cell := range rec {
			v, err := storage.ParseValue(schema[i].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("aqp: CSV line %d column %s: %w", line, schema[i].Name, err)
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DumpTableCSV writes an entire table as CSV with a header row. It dumps
// a snapshot, so it is safe under concurrent appends.
func DumpTableCSV(w io.Writer, t *Table) error {
	t = t.Snapshot()
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	n := t.NumRows()
	rec := make([]string, len(t.Schema()))
	for i := 0; i < n; i++ {
		for j := range rec {
			rec[j] = t.Column(j).Value(i).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DumpCSV writes a result as CSV.
func DumpCSV(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	rec := make([]string, len(r.Columns))
	for _, row := range r.Rows {
		for j, v := range row {
			rec[j] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
